"""Multiprogrammed workload mixes.

The paper evaluates 6 four-application mixes (listed in Table 1 / Figures
4, 5, 8, 9) and 14 two-application mixes (Figures 7, 10, 11) built from the
13 Table 3 benchmarks, covering donor+taker combinations, all-taker mixes
and mixes where nobody benefits from extra space.  The four-app mixes are
taken verbatim from Table 1; the paper does not enumerate the two-app
mixes, so we construct 14 pairs spanning the same category combinations,
including the one pair the text names (429+401, whose local hits turning
remote makes ASCC/AVGCC lose — the Figure 10/11 discussion).
"""

from __future__ import annotations

from repro.sim.config import ScaleModel
from repro.workloads.spec2006 import BenchmarkInstance, benchmark

#: Address-space span reserved per core: benchmarks never share lines.
_CORE_SPAN = 1 << 32

#: The six four-application mixes of Table 1 (SPEC codes).
MIX4: list[tuple[int, ...]] = [
    (445, 401, 444, 456),
    (445, 444, 456, 471),
    (433, 462, 450, 401),
    (433, 471, 473, 482),
    (458, 444, 401, 471),
    (458, 444, 471, 462),
]

#: Fourteen two-application mixes (see module docstring).
MIX2: list[tuple[int, ...]] = [
    (429, 401),  # two capacity-hungry apps; named in the Fig. 10 discussion
    (429, 444),
    (471, 444),
    (473, 445),
    (450, 458),
    (456, 444),
    (401, 445),
    (433, 471),
    (462, 473),
    (482, 429),
    (433, 462),  # two streamers: nobody can donate or gain
    (444, 445),  # two donors: nobody needs space
    (471, 473),
    (470, 450),
]


def mix_name(codes: tuple[int, ...]) -> str:
    """The paper's naming convention, e.g. ``445+444+456+471``."""
    return "+".join(str(c) for c in codes)


def make_workloads(
    codes: tuple[int, ...], scale: ScaleModel = ScaleModel()
) -> list[BenchmarkInstance]:
    """Instantiate a mix: one benchmark per core, disjoint address spaces."""
    return [
        benchmark(code).instantiate(scale, base=(core + 1) * _CORE_SPAN)
        for core, code in enumerate(codes)
    ]


def all_mixes(num_cores: int) -> list[tuple[int, ...]]:
    """The paper's mix list for a core count (2 or 4)."""
    if num_cores == 2:
        return list(MIX2)
    if num_cores == 4:
        return list(MIX4)
    raise ValueError(f"the paper defines mixes for 2 or 4 cores, not {num_cores}")
