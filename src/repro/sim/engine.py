"""Multi-core interleaved execution engine.

Cores advance independently through their traces; at each step the engine
executes the core with the smallest cycle count, so the L2 access streams
interleave in (simulated) time order and caches genuinely compete.

The scheduler picks that core without scanning: the waiting cores sit in a
binary heap keyed on ``(cycles, core_id)`` — the same total order (ties go
to the lowest core id) that a linear ``min`` over the core list produces —
and the running core keeps executing records while its key stays at or
below the heap root, so the heap is only touched when the lead actually
changes hands.  The interleaving is bit-identical to the ``min`` scan.

Following the paper's methodology, each core first warms the caches
(statistics off), then commits a fixed instruction quota with live
statistics, and then *keeps running* (its trace restarts if exhausted)
until the last core reaches its quota, "in order to keep competing for the
cache resources".

An optional :class:`~repro.obs.observer.Observer` taps the run without
touching the hot loop: its sampling deadline folds into the *existing*
per-record threshold compare (``threshold = min(state_threshold,
next_sample)``), so with no observer — ``next_sample`` stays infinite —
the per-record work is exactly what it was before instrumentation, and
the interleaving (hence every counter) is bit-identical.
"""

from __future__ import annotations

from heapq import heapify, heapreplace
from itertools import islice
from random import Random
from typing import Iterator, Protocol, Tuple

from repro.cpu.timing import TimingModel
from repro.sim.system import MemoryHierarchy

#: One trace record: (non-memory instruction gap, pc, byte address, is_write).
TraceRecord = Tuple[int, int, int, bool]


class Workload(Protocol):
    """What the engine needs from a per-core workload."""

    name: str
    timing: TimingModel

    def trace(self, rng: Random) -> Iterator[TraceRecord]:
        """A fresh (practically infinite) access trace."""
        ...


class _CoreRun:
    """Execution state of one core.

    ``base_cpi``/``mlp`` mirror ``workload.timing`` and ``stats``/
    ``l1_access`` mirror the hierarchy's per-core objects, hoisted here once
    so the per-record loop does no attribute chasing.
    """

    __slots__ = (
        "core_id",
        "workload",
        "trace",
        "rng",
        "cycles",
        "cycle_offset",
        "instructions",
        "warmup",
        "quota",
        "warmed",
        "done",
        "base_cpi",
        "mlp",
        "stats",
        "l1",
        "chunk",
        "chunk_pos",
        "threshold",
        "state_threshold",
        "next_sample",
    )

    def __init__(
        self, core_id: int, workload: Workload, quota: int, warmup: int, rng: Random
    ) -> None:
        self.core_id = core_id
        self.workload = workload
        self.rng = rng
        self.trace = iter(workload.trace(rng))
        self.cycles = 0.0
        self.cycle_offset = 0.0
        self.instructions = 0
        self.warmup = warmup
        self.quota = quota
        self.warmed = warmup == 0
        self.done = False
        self.base_cpi = workload.timing.base_cpi
        self.mlp = workload.timing.mlp
        #: Current record batch and the index of the next unconsumed
        #: record — a list cursor, cheaper per record than an iterator.
        self.chunk: list[TraceRecord] = []
        self.chunk_pos = 0
        #: Next instruction count at which a state transition can happen:
        #: first the end of warmup, then the quota, then never again.
        self.state_threshold: float = warmup if warmup else quota
        #: Next observer sampling point; ``inf`` unless an observer with
        #: a sampling interval is attached (set by the engine).
        self.next_sample: float = float("inf")
        #: The per-record compare point: min(state_threshold, next_sample).
        self.threshold: float = self.state_threshold


class Engine:
    """Runs a set of workloads over a memory hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        workloads: list[Workload],
        quota: int,
        seed: int,
        warmup: int = 0,
        observer=None,
    ) -> None:
        if not workloads:
            raise ValueError("need at least one workload")
        if quota <= 0 or warmup < 0:
            raise ValueError("quota must be positive and warmup non-negative")
        self.hierarchy = hierarchy
        self.cores = [
            _CoreRun(i, w, quota, warmup, Random((seed << 8) + i))
            for i, w in enumerate(workloads)
        ]
        for core in self.cores:
            core.stats = hierarchy.stats[core.core_id]  # type: ignore[attr-defined]
            core.l1 = hierarchy.l1s[core.core_id]
        self._offset_bits = hierarchy.l1s[0].geometry.offset_bits
        self._warming = warmup > 0
        self.observer = observer
        self._sample_interval = 0
        if observer is not None:
            # Wire the observer into every layer that emits: the
            # hierarchy (spill/swap events), the policy (mode flips,
            # re-grains, throttles) and the engine itself (samples).
            hierarchy.observer = observer
            policy = getattr(hierarchy, "policy", None)
            if policy is not None:
                policy.observer = observer
            observer.bind(hierarchy, workloads)
            self._sample_interval = int(getattr(observer, "interval", 0) or 0)
            if self._sample_interval > 0:
                for core in self.cores:
                    if core.warmed:  # no warmup: sampling starts at once
                        core.next_sample = self._sample_interval
                        core.threshold = min(
                            core.state_threshold, core.next_sample
                        )
        # The runtime sanitizer (repro.verify) hangs off the hierarchy;
        # the engine only needs to know it for cycle context and the
        # end-of-run sweep — nothing in the hot loop touches it.
        self._sanitizer = getattr(hierarchy, "sanitizer", None)
        if self._sanitizer is not None:
            self._sanitizer.bind_engine(self)
        if warmup:
            for stats in hierarchy.stats:  # type: ignore[attr-defined]
                stats.recording = False
            policy = getattr(hierarchy, "policy", None)
            if policy is not None:
                policy.begin_warmup()

    def run(self) -> None:
        """Execute until every core has committed warmup + quota."""
        cores = self.cores
        hierarchy = self.hierarchy
        hierarchy_access = hierarchy.access
        write_through = hierarchy.write_through
        offset_bits = self._offset_bits
        l1s = hierarchy.l1s
        remaining = len(cores)
        observer = self.observer
        sample_interval = self._sample_interval

        # Scheduler state: the heap holds one (cycles, core_id) entry per
        # core EXCEPT the one currently executing.  After each record the
        # current core keeps running while its (cycles, core_id) is still
        # <= the heap root — the same total order a ``min`` scan over all
        # cores produces — and the heap is only touched on a switch.  The
        # hot per-core state (cycles, instruction count, bound methods)
        # lives in locals for the duration of a run and is written back
        # when the core is swapped out.
        core = cores[0]  # all cores start at 0 cycles; the tie goes to id 0
        heap = [(c.cycles, c.core_id) for c in cores[1:]]
        heapify(heap)
        multi = len(cores) > 1
        # Every L1 shares one geometry, so the set mask is loop-invariant.
        l1_mask = l1s[0]._mask

        # Cores hand the lead back and forth every few records, so the
        # swap itself is hot.  Each core's loop state lives in one flat
        # list; a switch is then three list stores plus a single
        # 12-element unpack instead of a dozen attribute accesses.
        # Layout: [cycles, instructions, threshold, base_cpi, mlp,
        #          chunk, chunk_pos, chunk_len, l1, l1_mru, l1_sets,
        #          core_stats].
        states = []
        for c in cores:
            c_l1 = l1s[c.core_id]
            states.append(
                [
                    c.cycles,
                    c.instructions,
                    c.threshold,
                    c.base_cpi,
                    c.mlp,
                    c.chunk,
                    c.chunk_pos,
                    len(c.chunk),
                    c_l1,
                    c_l1._mru,
                    c_l1._sets,
                    c.stats,
                ]
            )

        core_id = core.core_id
        state = states[core_id]
        (
            cycles,
            instructions,
            threshold,
            base_cpi,
            mlp,
            chunk,
            chunk_pos,
            chunk_len,
            l1,
            l1_mru,
            l1_sets,
            core_stats,
        ) = state
        recording = core_stats.recording

        while remaining:
            # Traces are consumed in per-core batches: each core's record
            # stream depends only on its own RNG and component state, so
            # draining the generator a chunk at a time yields the same
            # records while amortising the per-record resume cost.  The
            # batch is walked with a list cursor — one index and one
            # compare per record instead of an iterator call.
            if chunk_pos < chunk_len:
                record = chunk[chunk_pos]
                chunk_pos += 1
            else:
                chunk = list(islice(core.trace, 1024))
                if not chunk:  # trace exhausted: restart it, like the paper
                    core.trace = iter(core.workload.trace(core.rng))
                    continue
                state[5] = core.chunk = chunk
                state[7] = chunk_len = len(chunk)
                record = chunk[0]
                chunk_pos = 1
            gap, pc, addr, is_write = record
            committed = gap + 1
            instructions += committed
            cycles += committed * base_cpi

            if recording:
                core_stats.instructions += committed

            line_addr = addr >> offset_bits
            set_idx = line_addr & l1_mask
            # Fully inlined L1 probe.  Most records re-touch the line the
            # set served last (dwell) — one list index and one compare;
            # the rest do the membership test and promotion here, saving
            # a method call per record.
            if l1_mru[set_idx] == line_addr:
                l1.hits += 1
                hit = True
            else:
                lines = l1_sets[set_idx]
                if line_addr in lines:
                    lines.move_to_end(line_addr, False)
                    l1_mru[set_idx] = line_addr
                    l1.hits += 1
                    hit = True
                else:
                    l1.misses += 1
                    hit = False
            if hit:
                if is_write:
                    write_through(core_id, line_addr)
                if recording:
                    core_stats.l1_hits += 1
            else:
                if recording:
                    core_stats.l1_misses += 1
                # The hierarchy allocates into the L1 itself (a spilled
                # line served remotely in place never enters this L1).
                latency = hierarchy_access(core_id, line_addr, is_write, pc)
                cycles += latency / mlp

            if instructions >= threshold:
                if instructions >= core.state_threshold:
                    if not core.warmed:
                        core.warmed = True
                        core.cycle_offset = cycles
                        core_stats.recording = recording = True
                        core.state_threshold = core.warmup + core.quota
                        if observer is not None:
                            observer.on_phase(
                                core_id, "measure", instructions, cycles
                            )
                            if sample_interval:
                                core.next_sample = (
                                    instructions + sample_interval
                                )
                        if self._warming and all(c.warmed for c in cores):
                            self._warming = False
                            policy = getattr(hierarchy, "policy", None)
                            if policy is not None:
                                policy.end_warmup()
                    elif not core.done:
                        core.done = True
                        core_stats.cycles = cycles - core.cycle_offset
                        core_stats.recording = recording = False
                        core.state_threshold = float("inf")
                        core.next_sample = float("inf")
                        remaining -= 1
                        if observer is not None:
                            core.cycles = cycles
                            core.instructions = instructions
                            observer.on_phase(
                                core_id, "done", instructions, cycles
                            )
                elif instructions >= core.next_sample:
                    core.cycles = cycles
                    core.instructions = instructions
                    observer.on_sample(core_id, instructions, cycles)
                    next_sample = core.next_sample + sample_interval
                    while next_sample <= instructions:  # a gap spanned >1
                        next_sample += sample_interval
                    core.next_sample = next_sample
                # With no observer next_sample is inf, so this is the old
                # state threshold and the compare sequence is unchanged.
                state[2] = core.threshold = threshold = (
                    core.state_threshold
                    if core.state_threshold <= core.next_sample
                    else core.next_sample
                )

            if multi:
                # Same total order as ``(root < (cycles, core_id))`` but
                # without allocating the entry tuple unless the lead
                # actually changes hands (the root's id never equals
                # ``core_id`` — the running core is not in the heap).
                root = heap[0]
                root_cycles = root[0]
                if root_cycles < cycles or (
                    root_cycles == cycles and root[1] < core_id
                ):
                    state[0] = core.cycles = cycles
                    state[1] = core.instructions = instructions
                    state[6] = chunk_pos
                    heapreplace(heap, (cycles, core_id))
                    core_id = root[1]
                    core = cores[core_id]
                    state = states[core_id]
                    (
                        cycles,
                        instructions,
                        threshold,
                        base_cpi,
                        mlp,
                        chunk,
                        chunk_pos,
                        chunk_len,
                        l1,
                        l1_mru,
                        l1_sets,
                        core_stats,
                    ) = state
                    recording = core_stats.recording

        core.cycles = cycles
        core.instructions = instructions
        core.chunk_pos = chunk_pos
        if observer is not None:
            observer.finish()
        if self._sanitizer is not None:
            self._sanitizer.final_check()
