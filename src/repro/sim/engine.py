"""Multi-core interleaved execution engine.

Cores advance independently through their traces; at each step the engine
executes the core with the smallest cycle count, so the L2 access streams
interleave in (simulated) time order and caches genuinely compete.

Following the paper's methodology, each core first warms the caches
(statistics off), then commits a fixed instruction quota with live
statistics, and then *keeps running* (its trace restarts if exhausted)
until the last core reaches its quota, "in order to keep competing for the
cache resources".
"""

from __future__ import annotations

from random import Random
from typing import Iterator, Protocol, Tuple

from repro.cpu.timing import TimingModel
from repro.sim.system import MemoryHierarchy

#: One trace record: (non-memory instruction gap, pc, byte address, is_write).
TraceRecord = Tuple[int, int, int, bool]


class Workload(Protocol):
    """What the engine needs from a per-core workload."""

    name: str
    timing: TimingModel

    def trace(self, rng: Random) -> Iterator[TraceRecord]:
        """A fresh (practically infinite) access trace."""
        ...


class _CoreRun:
    """Execution state of one core."""

    __slots__ = (
        "core_id",
        "workload",
        "trace",
        "rng",
        "cycles",
        "cycle_offset",
        "instructions",
        "warmup",
        "quota",
        "warmed",
        "done",
    )

    def __init__(
        self, core_id: int, workload: Workload, quota: int, warmup: int, rng: Random
    ) -> None:
        self.core_id = core_id
        self.workload = workload
        self.rng = rng
        self.trace = iter(workload.trace(rng))
        self.cycles = 0.0
        self.cycle_offset = 0.0
        self.instructions = 0
        self.warmup = warmup
        self.quota = quota
        self.warmed = warmup == 0
        self.done = False


class Engine:
    """Runs a set of workloads over a memory hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        workloads: list[Workload],
        quota: int,
        seed: int,
        warmup: int = 0,
    ) -> None:
        if not workloads:
            raise ValueError("need at least one workload")
        if quota <= 0 or warmup < 0:
            raise ValueError("quota must be positive and warmup non-negative")
        self.hierarchy = hierarchy
        self.cores = [
            _CoreRun(i, w, quota, warmup, Random((seed << 8) + i))
            for i, w in enumerate(workloads)
        ]
        self._offset_bits = hierarchy.l1s[0].geometry.offset_bits
        self._warming = warmup > 0
        if warmup:
            for stats in hierarchy.stats:  # type: ignore[attr-defined]
                stats.recording = False
            policy = getattr(hierarchy, "policy", None)
            if policy is not None:
                policy.begin_warmup()

    def run(self) -> None:
        """Execute until every core has committed warmup + quota."""
        cores = self.cores
        hierarchy = self.hierarchy
        stats = hierarchy.stats  # type: ignore[attr-defined]
        offset_bits = self._offset_bits
        remaining = len(cores)

        while remaining:
            core = min(cores, key=_cycles_of)
            try:
                gap, pc, addr, is_write = next(core.trace)
            except StopIteration:
                core.trace = iter(core.workload.trace(core.rng))
                continue
            committed = gap + 1
            core.instructions += committed
            timing = core.workload.timing
            core.cycles += timing.instruction_cycles(committed)

            core_stats = stats[core.core_id]
            if core_stats.recording:
                core_stats.instructions += committed

            line_addr = addr >> offset_bits
            l1 = hierarchy.l1s[core.core_id]
            if l1.access(line_addr):
                if is_write:
                    hierarchy.write_through(core.core_id, line_addr)
                if core_stats.recording:
                    core_stats.l1_hits += 1
            else:
                if core_stats.recording:
                    core_stats.l1_misses += 1
                # The hierarchy allocates into the L1 itself (a spilled
                # line served remotely in place never enters this L1).
                latency = hierarchy.access(core.core_id, line_addr, is_write, pc)
                core.cycles += timing.stall_cycles(latency)

            if core_stats.recording:
                core_stats.cycles = core.cycles - core.cycle_offset
            if not core.warmed and core.instructions >= core.warmup:
                core.warmed = True
                core.cycle_offset = core.cycles
                core_stats.recording = True
                if self._warming and all(c.warmed for c in cores):
                    self._warming = False
                    policy = getattr(hierarchy, "policy", None)
                    if policy is not None:
                        policy.end_warmup()
            elif not core.done and core.instructions >= core.warmup + core.quota:
                core.done = True
                core_stats.recording = False
                remaining -= 1


def _cycles_of(core: _CoreRun) -> float:
    return core.cycles
