"""Per-core and system-level simulation statistics.

``CoreStats`` counts only events that occur before the core reaches its
instruction quota (the paper freezes statistics at 10 B instructions while
cores keep running so cache competition continues); the engine flips
``recording`` off at the quota.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnect.bus import BusTraffic, LatencyModel


@dataclass(slots=True)
class CoreStats:
    """Events attributed to one core, while its stats are live.

    ``slots=True`` because the simulator increments these counters on every
    access in the hot loop.
    """

    core_id: int = 0
    recording: bool = True

    instructions: int = 0
    cycles: float = 0.0

    l1_hits: int = 0
    l1_misses: int = 0
    wt_writes: int = 0

    l2_accesses: int = 0
    l2_local_hits: int = 0
    l2_remote_hits: int = 0
    l2_memory_fetches: int = 0

    spills_out: int = 0
    spills_in: int = 0
    swaps: int = 0
    hits_on_spilled: int = 0
    writebacks: int = 0
    invalidations_sent: int = 0
    prefetches_issued: int = 0
    prefetches_useful: int = 0

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_misses(self) -> int:
        """Accesses not satisfied by the local L2."""
        return self.l2_remote_hits + self.l2_memory_fetches

    @property
    def mpki(self) -> float:
        """Local-L2 misses per kilo-instruction (the paper's L2 MPKI)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def offchip_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_memory_fetches / self.instructions

    @property
    def offchip_accesses(self) -> int:
        """Memory fetches plus writebacks (Table 4's metric)."""
        return self.l2_memory_fetches + self.writebacks

    def average_memory_latency(self, lat: LatencyModel) -> float:
        """Sequential-access average latency over L2 accesses (Fig. 10)."""
        if not self.l2_accesses:
            return 0.0
        total = (
            self.l2_local_hits * lat.l2_local_hit
            + self.l2_remote_hits * lat.l2_remote_hit
            + self.l2_memory_fetches * (lat.l2_remote_hit + lat.memory)
        )
        return total / self.l2_accesses

    def access_breakdown(self) -> dict[str, float]:
        """Fractions of L2 accesses by where they were served."""
        n = self.l2_accesses or 1
        return {
            "local": self.l2_local_hits / n,
            "remote": self.l2_remote_hits / n,
            "memory": self.l2_memory_fetches / n,
        }


@dataclass
class SystemResult:
    """Outcome of one multi-core simulation."""

    scheme: str
    workload: str
    cores: list[CoreStats] = field(default_factory=list)
    traffic: BusTraffic = field(default_factory=BusTraffic)
    latencies: LatencyModel = field(default_factory=LatencyModel)

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def total_spills(self) -> int:
        return sum(c.spills_out for c in self.cores)

    @property
    def total_hits_on_spilled(self) -> int:
        return sum(c.hits_on_spilled for c in self.cores)

    @property
    def hits_per_spill(self) -> float:
        spills = self.total_spills
        return self.total_hits_on_spilled / spills if spills else 0.0

    @property
    def total_offchip_accesses(self) -> int:
        return sum(c.offchip_accesses for c in self.cores)

    def cpis(self) -> list[float]:
        return [c.cpi for c in self.cores]

    def ipcs(self) -> list[float]:
        return [c.ipc for c in self.cores]

    def average_memory_latency(self) -> float:
        """System AML weighted by each core's L2 accesses."""
        accesses = sum(c.l2_accesses for c in self.cores)
        if not accesses:
            return 0.0
        total = sum(
            c.average_memory_latency(self.latencies) * c.l2_accesses for c in self.cores
        )
        return total / accesses

    def access_breakdown(self) -> dict[str, float]:
        n = sum(c.l2_accesses for c in self.cores) or 1
        return {
            "local": sum(c.l2_local_hits for c in self.cores) / n,
            "remote": sum(c.l2_remote_hits for c in self.cores) / n,
            "memory": sum(c.l2_memory_fetches for c in self.cores) / n,
        }
