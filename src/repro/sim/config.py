"""Simulation configuration: paper geometry, scaling model, knobs.

The paper simulates 10 billion instructions against 1 MB/8-way private L2s
(4096 sets).  A pure-Python reproduction scales the *whole* memory system —
caches and working sets together — by a single factor so that every
capacity ratio, and therefore every qualitative result, is preserved while
runs stay laptop-sized.  ``ScaleModel`` is that single factor; the default
is 1/16 (64 kB/8-way L2s, 256 sets).

The storage-cost analysis (Table 5) never scales: it always uses the
paper's exact geometry and 42-bit addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import CACHE_BACKENDS, default_backend
from repro.cache.geometry import CacheGeometry
from repro.interconnect.bus import LatencyModel

#: Geometries from the paper's Table 2.
PAPER_L1 = CacheGeometry(size_bytes=32 * 1024, ways=4, line_bytes=32)
PAPER_L2 = CacheGeometry(size_bytes=1024 * 1024, ways=8, line_bytes=32)
#: The Figure 1/2 sweep cache: 2 MB, 16 ways.
PAPER_SWEEP_L2 = CacheGeometry(size_bytes=2 * 1024 * 1024, ways=16, line_bytes=32)

#: AVGCC recomputes its granularity every 100 000 accesses (Section 6).
PAPER_TICK_INTERVAL = 100_000


@dataclass(frozen=True)
class ScaleModel:
    """Uniform scale between the paper's memory system and the simulated one.

    ``scale = 1.0`` reproduces the paper's sizes exactly; ``scale = 1/16``
    (the default for experiments) shrinks caches and working sets together.
    """

    scale: float = 1.0 / 16.0

    def l1(self) -> CacheGeometry:
        return PAPER_L1.scaled(self.scale)

    def l2(self, paper_size_bytes: int = PAPER_L2.size_bytes) -> CacheGeometry:
        return CacheGeometry(
            int(paper_size_bytes * self.scale), PAPER_L2.ways, PAPER_L2.line_bytes
        )

    def sweep_l2(self) -> CacheGeometry:
        return PAPER_SWEEP_L2.scaled(self.scale)

    def bytes(self, paper_bytes: int) -> int:
        """Scale a working-set size, keeping at least one line."""
        return max(PAPER_L2.line_bytes, int(paper_bytes * self.scale))

    def tick_interval(self) -> int:
        """Scale the 100 000-access maintenance period with the system."""
        return max(1024, int(PAPER_TICK_INTERVAL * self.scale))


@dataclass(frozen=True)
class PrefetchConfig:
    """Per-LLC stride prefetcher (Section 6.3 sensitivity study)."""

    table_entries: int = 64
    degree: int = 1
    confidence_threshold: int = 2


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and run a CMP simulation."""

    num_cores: int
    l2_geometry: CacheGeometry
    l1_geometry: CacheGeometry
    latencies: LatencyModel = field(default_factory=LatencyModel)
    tick_interval: int = PAPER_TICK_INTERVAL
    seed: int = 12345
    prefetch: Optional[PrefetchConfig] = None
    #: Instructions each core commits before its statistics freeze.
    quota: int = 200_000
    #: Cache storage backend: "slot" (kernel v2 default) or "dict" (the
    #: reference OrderedDict implementation, for differential testing).
    #: Both are bit-identical; this knob never affects results.
    cache_backend: str = "slot"

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.l1_geometry.line_bytes != self.l2_geometry.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        if self.quota <= 0 or self.tick_interval <= 0:
            raise ValueError("quota and tick_interval must be positive")
        if self.cache_backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {self.cache_backend!r}; "
                f"choose from {sorted(CACHE_BACKENDS)}"
            )


def default_config(
    num_cores: int,
    scale: ScaleModel = ScaleModel(),
    quota: int = 200_000,
    seed: int = 12345,
    l2_paper_bytes: int = PAPER_L2.size_bytes,
    prefetch: Optional[PrefetchConfig] = None,
    cache_backend: Optional[str] = None,
) -> SystemConfig:
    """The scaled equivalent of the paper's Table 2 configuration.

    ``cache_backend=None`` defers to ``REPRO_CACHE_BACKEND`` (default
    "slot"), so CI can steer whole runs onto the reference backend.
    """
    return SystemConfig(
        num_cores=num_cores,
        l2_geometry=scale.l2(l2_paper_bytes),
        l1_geometry=scale.l1(),
        tick_interval=scale.tick_interval(),
        seed=seed,
        quota=quota,
        prefetch=prefetch,
        cache_backend=cache_backend if cache_backend is not None else default_backend(),
    )
