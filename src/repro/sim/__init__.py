"""Simulation wiring: configuration, hierarchies, engine, results."""

from repro.sim.config import (
    PAPER_L1,
    PAPER_L2,
    PAPER_SWEEP_L2,
    PrefetchConfig,
    ScaleModel,
    SystemConfig,
    default_config,
)
from repro.sim.engine import Engine
from repro.sim.results import CoreStats, SystemResult
from repro.sim.system import PrivateHierarchy, SharedHierarchy

__all__ = [
    "CoreStats",
    "Engine",
    "PAPER_L1",
    "PAPER_L2",
    "PAPER_SWEEP_L2",
    "PrefetchConfig",
    "PrivateHierarchy",
    "ScaleModel",
    "SharedHierarchy",
    "SystemConfig",
    "SystemResult",
    "default_config",
]
