"""CMP memory hierarchies: private LLCs with cooperation, and a shared LLC.

:class:`PrivateHierarchy` wires per-core L1s, private L2s, the functional
MESI broadcast (presence directory) and one :class:`~repro.policies.base.
LLCPolicy`, and implements the complete access flow of the paper's system:

* local L2 hit (9 cycles), with MESI write upgrades;
* remote L2 hit (25 cycles) found by the broadcast.  A *spilled* line is
  served **in place**: the receiver promotes it and forwards the data, and
  the requester does not re-allocate it — this is what makes a spill
  steady-state stable and what turns the paper's Figure 10 "local hits"
  into persistent "remote hits".  A *genuinely shared* line (multithreaded
  workloads) is allocated locally with M->S downgrades and writebacks;
* memory fetch (remote probe + 460 cycles);
* victim disposition on every allocation: swap into a slot freed by a
  migrating line (ASCC Section 3.2), spill to a receiver chosen by the
  policy, or eviction to memory with writeback of dirty lines;
* inclusion: the owning L1 is back-invalidated whenever its L2 loses a
  line, including when the line is spilled away.

:class:`SharedHierarchy` models the Section 6.1 comparison point — a banked
shared LLC of the same aggregate capacity accessed at an interleaved-bank
average latency.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Optional

from repro.cache.cache import CacheArray, Line, resolve_backend
from repro.cache.geometry import CacheGeometry
from repro.cache.l1 import L1Cache
from repro.coherence.directory import PresenceDirectory
from repro.coherence.protocol import Mesi
from repro.cpu.prefetch import StridePrefetcher
from repro.interconnect.bus import BusTraffic
from repro.policies.base import LLCPolicy
from repro.sim.config import SystemConfig
from repro.sim.results import CoreStats

#: Access outcomes returned by ``access``.
LOCAL, REMOTE, MEMORY = "local", "remote", "memory"


class MemoryHierarchy(abc.ABC):
    """What the engine needs from a memory system below the L1s."""

    l1s: list[L1Cache]

    #: Optional :class:`~repro.obs.observer.Observer` receiving typed
    #: events (spill/swap/...).  ``None`` keeps every emission site on
    #: its zero-cost branch; the engine sets this when one is attached.
    observer = None

    #: Optional :class:`~repro.verify.sanitizer.InvariantChecker`.  Same
    #: zero-cost-when-off contract as ``observer``: every check site is
    #: guarded by ``is not None`` and sits on miss/coherence paths — the
    #: local-hit fast path never looks at it.  Attached by
    #: ``repro.verify.attach_sanitizer`` (``--sanitize`` /
    #: ``REPRO_SANITIZE=1`` / ``RunSpec.sanitize``).
    sanitizer = None

    @abc.abstractmethod
    def access(self, core_id: int, line_addr: int, is_write: bool, pc: int) -> float:
        """Handle an L1-missing access; return its latency in cycles."""

    @abc.abstractmethod
    def write_through(self, core_id: int, line_addr: int) -> None:
        """Propagate an L1 store hit to the level below (write-through L1)."""


class PrivateHierarchy(MemoryHierarchy):
    """Private per-core L2s cooperating under an :class:`LLCPolicy`."""

    def __init__(self, config: SystemConfig, policy: LLCPolicy) -> None:
        self.config = config
        self.policy = policy
        self.rng = Random(config.seed)
        self.directory = PresenceDirectory(config.num_cores)
        # The module-global ``CacheArray`` (not the registry) names the
        # default backend so the legacy benchmark can patch it; "dict"
        # explicitly selects the reference backend for differential runs.
        backend = getattr(config, "cache_backend", "slot")
        array_cls = CacheArray if backend == "slot" else resolve_backend(backend)
        self.l2s = [
            array_cls(config.l2_geometry, cache_id=i, directory=self.directory)
            for i in range(config.num_cores)
        ]
        self.l1s = [L1Cache(config.l1_geometry) for _ in range(config.num_cores)]
        self.stats = [CoreStats(core_id=i) for i in range(config.num_cores)]
        self.traffic = BusTraffic()
        self.prefetchers: Optional[list[StridePrefetcher]] = None
        if config.prefetch is not None:
            self.prefetchers = [
                StridePrefetcher(config.prefetch) for _ in range(config.num_cores)
            ]
        self._accesses_since_tick = 0
        self._tick_interval = config.tick_interval
        self._lat = config.latencies
        # Hot-path constants and per-core bound methods: one list index
        # instead of two attribute chases plus a method bind per call.
        self._set_mask = config.l2_geometry.sets - 1
        self._lat_local = config.latencies.l2_local_hit
        self._l2_lookup = [l2.lookup for l2 in self.l2s]
        self._l2_probe = [l2.probe for l2 in self.l2s]
        self._l1_allocate = [l1.allocate for l1 in self.l1s]
        policy.attach(config.num_cores, config.l2_geometry, Random(config.seed ^ 0x5BD1))
        policy.bind(self)
        self._policy_on_access = policy.on_access

    # ------------------------------------------------------------------ #
    # Main access path
    # ------------------------------------------------------------------ #

    def access(self, core_id: int, line_addr: int, is_write: bool, pc: int) -> float:
        stats = self.stats[core_id]
        set_idx = line_addr & self._set_mask
        # Inlined _bump_tick: this runs on every L2 access.
        ticks = self._accesses_since_tick + 1
        if ticks >= self._tick_interval:
            self._accesses_since_tick = 0
            self.policy.tick()
        else:
            self._accesses_since_tick = ticks
        if stats.recording:
            stats.l2_accesses += 1

        line = self._l2_lookup[core_id](line_addr)
        if self.prefetchers is not None:
            self._run_prefetcher(core_id, pc, line_addr)

        if line is not None:
            self._policy_on_access(core_id, set_idx, "local")
            self.traffic.local_hits += 1
            if stats.recording:
                stats.l2_local_hits += 1
                if line.prefetched:
                    stats.prefetches_useful += 1
            line.prefetched = False
            if is_write:
                self._write_upgrade(core_id, line)
            self._l1_allocate[core_id](line_addr)
            return self._lat_local

        # Local miss: snoop the chip (functional broadcast).
        self.traffic.snoop_broadcasts += 1
        holders = self.directory.peers(line_addr, core_id)
        if holders:
            return self._remote_hit(core_id, line_addr, set_idx, is_write, holders)
        return self._memory_fetch(core_id, line_addr, set_idx, is_write)

    def write_through(self, core_id: int, line_addr: int) -> None:
        """L1 store hit: update the inclusive L2 copy's state to M."""
        line = self._l2_probe[core_id](line_addr)
        if line is None:  # pragma: no cover - inclusion guarantees presence
            raise AssertionError(f"inclusion violated for line {line_addr:#x}")
        stats = self.stats[core_id]
        if stats.recording:
            stats.wt_writes += 1
        if line.state is not Mesi.MODIFIED:
            self._write_upgrade(core_id, line)

    # ------------------------------------------------------------------ #
    # Miss resolution
    # ------------------------------------------------------------------ #

    def _remote_hit(
        self,
        core_id: int,
        line_addr: int,
        set_idx: int,
        is_write: bool,
        holders: list[int],
    ) -> float:
        lat = self.config.latencies
        stats = self.stats[core_id]
        self.traffic.remote_hits += 1
        holder = holders[0] if len(holders) == 1 else self.rng.choice(holders)
        remote_line = self.l2s[holder].probe(line_addr)
        assert remote_line is not None
        if stats.recording:
            stats.l2_remote_hits += 1
            if remote_line.spilled:
                stats.hits_on_spilled += 1

        self.policy.on_access(core_id, set_idx, "remote")

        if remote_line.spilled and len(holders) == 1:
            if not self.policy.wants_swap(core_id, set_idx):
                # Swap-less schemes serve a spilled line in place: the
                # receiver promotes it (it proved useful) and forwards the
                # data; the requester does not re-allocate it, so every
                # future access keeps costing the remote-hit latency
                # (Figure 10's persistent remote fraction).
                self.l2s[holder].lookup(line_addr)  # promote to MRU
                if is_write:
                    remote_line.state = Mesi.MODIFIED
                san = self.sanitizer
                if san is not None:
                    san.after_access(holder, line_addr)
                return lat.l2_remote_hit
            # ASCC-family swap (Section 3.2): the requested line migrates
            # home and the local victim — when it is the last copy — takes
            # the slot the migration just freed.  The pair of last copies
            # stays on chip with no receiver-pool arbitration, which is
            # what keeps a cooperatively-held working set resident.
            new_state = (
                Mesi.MODIFIED
                if remote_line.state is Mesi.MODIFIED or is_write
                else Mesi.EXCLUSIVE
            )
            self._invalidate_at(holder, line_addr)
            self._allocate_local(core_id, line_addr, set_idx, new_state, holder)
            self.l1s[core_id].allocate(line_addr)
            return lat.l2_remote_hit

        migrated_holder: Optional[int] = None
        san = self.sanitizer
        if is_write:
            # MESI write: all remote copies are invalidated.
            new_state = Mesi.MODIFIED
            for h in holders:
                if san is not None:
                    san.check_transition(h, line_addr, "remote_write")
                self._invalidate_at(h, line_addr)
            migrated_holder = holder
        else:
            # Genuinely shared read: remote copies downgrade to S.
            new_state = Mesi.SHARED
            for h in holders:
                peer = self.l2s[h].probe(line_addr)
                if peer is not None and peer.state is Mesi.MODIFIED:
                    if san is not None:
                        san.on_transition(h, line_addr, peer.state, "remote_read")
                    self._writeback(h)
                    peer.state = Mesi.SHARED
                elif peer is not None and peer.state is Mesi.EXCLUSIVE:
                    if san is not None:
                        san.on_transition(h, line_addr, peer.state, "remote_read")
                    peer.state = Mesi.SHARED

        self._allocate_local(core_id, line_addr, set_idx, new_state, migrated_holder)
        self.l1s[core_id].allocate(line_addr)
        return lat.l2_remote_hit

    def _memory_fetch(
        self, core_id: int, line_addr: int, set_idx: int, is_write: bool
    ) -> float:
        lat = self.config.latencies
        stats = self.stats[core_id]
        self.policy.on_access(core_id, set_idx, "miss")
        self.traffic.memory_fetches += 1
        if stats.recording:
            stats.l2_memory_fetches += 1
        new_state = Mesi.MODIFIED if is_write else Mesi.EXCLUSIVE
        self._allocate_local(core_id, line_addr, set_idx, new_state, None)
        self.l1s[core_id].allocate(line_addr)
        # The broadcast that found nobody ran concurrently with the fetch.
        return lat.l2_remote_hit + lat.memory

    # ------------------------------------------------------------------ #
    # Allocation and victim disposition
    # ------------------------------------------------------------------ #

    def _allocate_local(
        self,
        core_id: int,
        line_addr: int,
        set_idx: int,
        state: Mesi,
        migrated_holder: Optional[int],
    ) -> None:
        cache = self.l2s[core_id]
        policy = self.policy
        victim: Optional[Line] = None
        if cache.occupancy(set_idx) >= cache.geometry.ways:
            victim_pos = policy.choose_victim_position(core_id, set_idx, "demand")
            victim = cache.victim_candidate(set_idx, victim_pos)
        san = self.sanitizer
        if victim is not None:
            last_copy = self.directory.is_last_copy(victim.addr, core_id)
            cache.evict(victim.addr)
            self.l1s[core_id].invalidate(victim.addr)
            if san is not None:
                san.on_line_removed(core_id, victim)
                san.after_back_invalidate(core_id, victim.addr)
            self._dispose_victim(core_id, set_idx, victim, last_copy, migrated_holder)
            # Disposal copied whatever it needed (spill fills build a new
            # line from the victim's fields), so the slot can be recycled.
            cache.release(victim)
        pos = policy.insertion_position(core_id, set_idx)
        cache.fill_fields(line_addr, state, position=pos)
        if san is not None:
            san.after_access(core_id, line_addr)

    def _dispose_victim(
        self,
        core_id: int,
        set_idx: int,
        victim: Line,
        last_copy: bool,
        migrated_holder: Optional[int],
    ) -> None:
        if not last_copy:
            # Another on-chip copy survives; MESI guarantees ours is clean.
            return
        policy = self.policy
        if migrated_holder is not None and policy.wants_swap(core_id, set_idx):
            # Swap: the victim takes the slot just freed by the migrating
            # line, keeping both last copies on chip (Section 3.2).
            self._place_spilled(core_id, migrated_holder, set_idx, victim, swap=True)
            return
        if (not victim.spilled or policy.respill_spilled) and policy.should_spill(
            core_id, set_idx
        ):
            receiver = policy.select_receiver(core_id, set_idx)
            if receiver is not None and receiver != core_id:
                self._place_spilled(core_id, receiver, set_idx, victim, swap=False)
                return
        self._evict_to_memory(core_id, victim)

    def _place_spilled(
        self, src: int, dst: int, set_idx: int, victim: Line, swap: bool
    ) -> None:
        cache = self.l2s[dst]
        policy = self.policy
        if cache.occupancy(set_idx) >= cache.geometry.ways:
            r_pos = policy.choose_victim_position(dst, set_idx, "spill")
            if r_pos is None and policy.spill_victim_prefers_spilled:
                # ASCC-family receiver rule: recycle the least-recent line
                # that was itself spilled in, before touching any of the
                # receiver set's own working set (uses the per-line
                # spilled bit the spill mechanism already carries).
                lines = cache.set_lines(set_idx)
                for pos in range(len(lines) - 1, -1, -1):
                    if lines[pos].spilled:
                        r_pos = pos
                        break
            r_victim = cache.victim_candidate(set_idx, r_pos)
            if r_victim is not None:
                r_last = self.directory.is_last_copy(r_victim.addr, dst)
                cache.evict(r_victim.addr)
                self.l1s[dst].invalidate(r_victim.addr)
                san = self.sanitizer
                if san is not None:
                    san.on_line_removed(dst, r_victim)
                    san.after_back_invalidate(dst, r_victim.addr)
                if r_last:
                    # No cascading spills: displaced lines go to memory.
                    self._evict_to_memory(dst, r_victim)
                cache.release(r_victim)
        cache.fill_fields(
            victim.addr,
            victim.state,
            True,  # spilled
            True,  # shared_region
            position=policy.spill_insertion_position(dst, set_idx),
        )
        src_stats, dst_stats = self.stats[src], self.stats[dst]
        if swap:
            self.traffic.swaps += 1
            if src_stats.recording:
                src_stats.swaps += 1
        else:
            self.traffic.spills += 1
            if src_stats.recording:
                src_stats.spills_out += 1
            if dst_stats.recording:
                dst_stats.spills_in += 1
            policy.on_spill(src, dst, set_idx)
        observer = self.observer
        if observer is not None:
            observer.emit(
                "swap" if swap else "spill",
                src=src,
                dst=dst,
                set=set_idx,
                addr=victim.addr,
            )
        san = self.sanitizer
        if san is not None:
            san.on_spill_fill(src, dst, set_idx, victim.addr, swap)

    # ------------------------------------------------------------------ #
    # Coherence helpers
    # ------------------------------------------------------------------ #

    def _write_upgrade(self, core_id: int, line: Line) -> None:
        """Local write hit: invalidate remote copies, go to M."""
        if line.state is not Mesi.MODIFIED:
            san = self.sanitizer
            if san is not None:
                san.on_transition(core_id, line.addr, line.state, "write_hit")
            peers = self.directory.peers(line.addr, core_id)
            for h in peers:
                self._invalidate_at(h, line.addr)
            if peers and self.stats[core_id].recording:
                self.stats[core_id].invalidations_sent += len(peers)
            line.state = Mesi.MODIFIED

    def _invalidate_at(self, holder: int, line_addr: int) -> None:
        cache = self.l2s[holder]
        line = cache.invalidate(line_addr)
        san = self.sanitizer
        if line is not None:
            if san is not None:
                san.on_line_removed(holder, line)
            cache.release(line)
        self.l1s[holder].invalidate(line_addr)
        self.traffic.invalidations += 1
        if san is not None:
            san.after_back_invalidate(holder, line_addr)

    def _writeback(self, core_id: int) -> None:
        self.traffic.writebacks += 1
        if self.stats[core_id].recording:
            self.stats[core_id].writebacks += 1

    def _evict_to_memory(self, core_id: int, victim: Line) -> None:
        if victim.state is Mesi.MODIFIED:
            self._writeback(core_id)

    # ------------------------------------------------------------------ #
    # Prefetch and maintenance
    # ------------------------------------------------------------------ #

    def _run_prefetcher(self, core_id: int, pc: int, line_addr: int) -> None:
        assert self.prefetchers is not None
        cache = self.l2s[core_id]
        stats = self.stats[core_id]
        for target in self.prefetchers[core_id].observe(pc, line_addr):
            if target < 0 or cache.contains(target) or self.directory.is_on_chip(target):
                continue
            set_idx = target & cache.set_mask
            san = self.sanitizer
            if cache.occupancy(set_idx) >= cache.geometry.ways:
                victim = cache.victim_candidate(set_idx)
                assert victim is not None
                last = self.directory.is_last_copy(victim.addr, core_id)
                cache.evict(victim.addr)
                self.l1s[core_id].invalidate(victim.addr)
                if san is not None:
                    san.on_line_removed(core_id, victim)
                    san.after_back_invalidate(core_id, victim.addr)
                if last:
                    self._evict_to_memory(core_id, victim)
                cache.release(victim)
            # Install near LRU so useless prefetches pollute minimally.
            pos = max(0, cache.geometry.ways - 2)
            cache.fill_fields(target, Mesi.EXCLUSIVE, prefetched=True, position=pos)
            if san is not None:
                san.check_set(core_id, set_idx)
            self.traffic.prefetch_fills += 1
            if stats.recording:
                stats.prefetches_issued += 1

    def _bump_tick(self) -> None:
        # Kept for callers outside the hot path; ``access`` inlines this.
        self._accesses_since_tick += 1
        if self._accesses_since_tick >= self._tick_interval:
            self._accesses_since_tick = 0
            self.policy.tick()

    # ------------------------------------------------------------------ #
    # Invariant checks (used by tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Verify directory/cache consistency and MESI exclusivity."""
        seen: dict[int, set[int]] = {}
        for cache in self.l2s:
            for line in cache.iter_lines():
                seen.setdefault(line.addr, set()).add(cache.cache_id)
                if line.state in (Mesi.MODIFIED, Mesi.EXCLUSIVE):
                    holders = self.directory.holders(line.addr)
                    if len(holders) != 1:
                        raise AssertionError(
                            f"{line.state} line {line.addr:#x} has holders {holders}"
                        )
        for addr, holders in seen.items():
            if frozenset(holders) != self.directory.holders(addr):
                raise AssertionError(f"directory desync for line {addr:#x}")
        for i, l1 in enumerate(self.l1s):
            for addr in l1.resident_addrs():
                if not self.l2s[i].contains(addr):
                    raise AssertionError(
                        f"inclusion violated: L1[{i}] holds {addr:#x}"
                    )


class SharedHierarchy(MemoryHierarchy):
    """Banked shared LLC of aggregate capacity (Section 6.1 comparison).

    Addresses interleave across banks; following the paper, each access is
    charged the *average* bank latency, which grows with the core count.
    All caches are write-back in this configuration.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        aggregate = CacheGeometry(
            config.l2_geometry.size_bytes * config.num_cores,
            config.l2_geometry.ways,
            config.l2_geometry.line_bytes,
        )
        self.llc = CacheArray(aggregate)
        self.l1s = [L1Cache(config.l1_geometry) for _ in range(config.num_cores)]
        self.stats = [CoreStats(core_id=i) for i in range(config.num_cores)]
        self.traffic = BusTraffic()
        self._latency = config.latencies.shared_llc(config.num_cores)

    def access(self, core_id: int, line_addr: int, is_write: bool, pc: int) -> float:
        stats = self.stats[core_id]
        if stats.recording:
            stats.l2_accesses += 1
        line = self.llc.lookup(line_addr)
        if line is not None:
            if is_write:
                line.state = Mesi.MODIFIED
            self.traffic.local_hits += 1
            if stats.recording:
                stats.l2_local_hits += 1
            self.l1s[core_id].allocate(line_addr)
            return self._latency
        self.traffic.memory_fetches += 1
        if stats.recording:
            stats.l2_memory_fetches += 1
        state = Mesi.MODIFIED if is_write else Mesi.EXCLUSIVE
        victim = self.llc.fill_fields(line_addr, state, position=0)
        if victim is not None:
            for l1 in self.l1s:
                l1.invalidate(victim.addr)
            if victim.state is Mesi.MODIFIED:
                self.traffic.writebacks += 1
                if stats.recording:
                    stats.writebacks += 1
            self.llc.release(victim)
        self.l1s[core_id].allocate(line_addr)
        return self._latency + self.config.latencies.memory

    def write_through(self, core_id: int, line_addr: int) -> None:
        line = self.llc.probe(line_addr)
        if line is not None:
            line.state = Mesi.MODIFIED
        if self.stats[core_id].recording:
            self.stats[core_id].wt_writes += 1
