"""Storage-cost models: Table 5, Section 7 and Section 8.

These are exact bit-level computations against the paper's geometry (42-bit
addresses, MESI+LRU state, 32 B lines) — no simulation involved — so the
reproduction matches the paper's numbers digit for digit:

* Table 5: baseline vs AVGCC storage for a 1 MB/8-way cache
  (1144 kB vs ~1146 kB, a 0.17 % overhead);
* Section 7: limited-counter AVGCC variants (128 counters -> 83 B,
  2048 -> 1284 B);
* Section 8: QoS-Aware AVGCC (~0.35 % overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.sim.config import PAPER_L2

#: Paper assumptions.
ADDRESS_BITS = 42
MESI_LRU_STATE_BITS = 5  # per tag-store entry


def _log2(value: int) -> int:
    return value.bit_length() - 1


@dataclass(frozen=True)
class StorageCost:
    """Bit-level storage budget of one configuration."""

    name: str
    tag_entry_bits: int
    tag_store_bits: int
    data_store_bits: int
    extra_bits: int

    @property
    def total_bits(self) -> int:
        return self.tag_store_bits + self.data_store_bits + self.extra_bits

    @property
    def total_bytes(self) -> int:
        return (self.total_bits + 7) // 8

    def overhead_versus(self, baseline: "StorageCost") -> float:
        """Fractional extra storage relative to ``baseline``."""
        return self.total_bits / baseline.total_bits - 1.0


def baseline_cost(geometry: CacheGeometry = PAPER_L2) -> StorageCost:
    """The Table 5 baseline column."""
    tag_bits = geometry.tag_bits(ADDRESS_BITS)
    entry = MESI_LRU_STATE_BITS + tag_bits
    return StorageCost(
        name="baseline",
        tag_entry_bits=entry,
        tag_store_bits=entry * geometry.lines,
        data_store_bits=geometry.line_bytes * 8 * geometry.lines,
        extra_bits=0,
    )


def ssl_counter_bits(ways: int, fraction_bits: int = 0) -> int:
    """Width of one saturation counter (range 0..2K-1, plus QoS fraction)."""
    return _log2(2 * ways) + fraction_bits


def avgcc_cost(
    geometry: CacheGeometry = PAPER_L2,
    max_counters: int | None = None,
    fraction_bits: int = 0,
) -> StorageCost:
    """AVGCC storage: per-counter SSL + policy bit, plus A/B/D counters.

    ``max_counters`` models the Section 7 cost-limited variants; ``None``
    is the full design (one counter per set).  The A and B counters count
    up to the number of counters (12 bits for 4096), and D holds the
    granularity logarithm (4 bits in the paper's table).
    """
    base = baseline_cost(geometry)
    counters = geometry.sets if max_counters is None else min(max_counters, geometry.sets)
    per_counter = ssl_counter_bits(geometry.ways, fraction_bits) + 1  # + policy bit
    counter_bits = _log2(counters) if counters > 1 else 1
    a_b_d = counter_bits + counter_bits + 4
    return StorageCost(
        name=f"avgcc/{counters}" if max_counters is not None else "avgcc",
        tag_entry_bits=base.tag_entry_bits,
        tag_store_bits=base.tag_store_bits,
        data_store_bits=base.data_store_bits,
        extra_bits=per_counter * counters + a_b_d,
    )


def ascc_cost(geometry: CacheGeometry = PAPER_L2) -> StorageCost:
    """ASCC: the AVGCC structures minus the A/B/D counters."""
    avgcc = avgcc_cost(geometry)
    counters = geometry.sets
    per_counter = ssl_counter_bits(geometry.ways) + 1
    return StorageCost(
        name="ascc",
        tag_entry_bits=avgcc.tag_entry_bits,
        tag_store_bits=avgcc.tag_store_bits,
        data_store_bits=avgcc.data_store_bits,
        extra_bits=per_counter * counters,
    )


def qos_avgcc_cost(geometry: CacheGeometry = PAPER_L2) -> StorageCost:
    """Section 8: QoS-Aware AVGCC storage.

    Adds, per cache: two 8-bit miss counters (2 bytes total), 4 bits of
    QoSRatio (1.3 fixed point), ``log2(sets)`` bits to count sampled sets,
    and 3 extra fraction bits per saturation counter (4.3 fixed point).
    """
    base = avgcc_cost(geometry, fraction_bits=3)
    per_cache = 16 + 4 + _log2(geometry.sets)
    return StorageCost(
        name="qos-avgcc",
        tag_entry_bits=base.tag_entry_bits,
        tag_store_bits=base.tag_store_bits,
        data_store_bits=base.data_store_bits,
        extra_bits=base.extra_bits + per_cache,
    )


def limited_counter_extra_bytes(geometry: CacheGeometry, max_counters: int) -> int:
    """Section 7: bytes of additional storage for a limited variant."""
    cost = avgcc_cost(geometry, max_counters=max_counters)
    return (cost.extra_bits + 7) // 8


def table5_rows(geometry: CacheGeometry = PAPER_L2) -> list[dict[str, object]]:
    """The Table 5 comparison, one dict per row."""
    base = baseline_cost(geometry)
    avgcc = avgcc_cost(geometry)
    tag_bits = geometry.tag_bits(ADDRESS_BITS)
    return [
        {"item": "State (MESI+LRU) bits", "baseline": MESI_LRU_STATE_BITS, "avgcc": MESI_LRU_STATE_BITS},
        {"item": "Tag bits", "baseline": tag_bits, "avgcc": tag_bits},
        {"item": "Tag-store entry bits", "baseline": base.tag_entry_bits, "avgcc": avgcc.tag_entry_bits},
        {"item": "Tag-store entries", "baseline": geometry.lines, "avgcc": geometry.lines},
        {"item": "Sets", "baseline": geometry.sets, "avgcc": geometry.sets},
        {"item": "Per-set extra bits", "baseline": 0, "avgcc": ssl_counter_bits(geometry.ways) + 1},
        {"item": "A/B/D counter bits", "baseline": 0, "avgcc": avgcc.extra_bits - (ssl_counter_bits(geometry.ways) + 1) * geometry.sets},
        {"item": "Tag store (kB)", "baseline": base.tag_store_bits / 8192, "avgcc": avgcc.tag_store_bits / 8192},
        {"item": "Data store (kB)", "baseline": base.data_store_bits / 8192, "avgcc": avgcc.data_store_bits / 8192},
        {"item": "Additional storage (B)", "baseline": 0, "avgcc": (avgcc.extra_bits + 7) // 8},
        {"item": "Total (kB)", "baseline": base.total_bits / 8192, "avgcc": avgcc.total_bits / 8192},
        {"item": "Overhead", "baseline": 0.0, "avgcc": avgcc.overhead_versus(base)},
    ]
