"""Programmatic calibration report: models vs the paper's Table 3.

Runs each benchmark model alone on the (scaled) baseline machine and
compares the measured MPKI and CPI against Table 3's reference values.
The CLI's ``calibrate`` command and the calibration tests are built on
this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.experiments.runner import ExperimentRunner
from repro.workloads.spec2006 import all_codes, benchmark


@dataclass(frozen=True)
class CalibrationRow:
    """Measured vs Table 3 reference for one benchmark."""

    code: int
    label: str
    measured_mpki: float
    target_mpki: float
    measured_cpi: float
    target_cpi: float
    capacity_sensitive: bool

    @property
    def mpki_ratio(self) -> float:
        return self.measured_mpki / self.target_mpki if self.target_mpki else 0.0

    @property
    def cpi_ratio(self) -> float:
        return self.measured_cpi / self.target_cpi if self.target_cpi else 0.0


def calibrate(
    runner: ExperimentRunner | None = None,
    codes: list[int] | None = None,
) -> list[CalibrationRow]:
    """Measure every benchmark model on the baseline machine, alone."""
    runner = runner or ExperimentRunner(quota=100_000, warmup=60_000)
    rows = []
    for code in codes if codes is not None else all_codes():
        spec = benchmark(code)
        stats = runner.run((code,), "baseline").cores[0]
        rows.append(
            CalibrationRow(
                code=code,
                label=spec.label,
                measured_mpki=stats.mpki,
                target_mpki=spec.table3_mpki,
                measured_cpi=stats.cpi,
                target_cpi=spec.table3_cpi,
                capacity_sensitive=spec.capacity_sensitive,
            )
        )
    return rows


def worst_ratio(rows: list[CalibrationRow]) -> float:
    """The largest multiplicative MPKI deviation across the table."""
    worst = 1.0
    for row in rows:
        ratio = row.mpki_ratio
        if ratio > 0:
            worst = max(worst, ratio, 1.0 / ratio)
    return worst


def format_calibration(rows: list[CalibrationRow]) -> str:
    """Render the calibration rows as an ASCII table."""
    return format_table(
        ["benchmark", "MPKI", "Table 3", "CPI", "Table 3", "class"],
        [
            [r.label, round(r.measured_mpki, 2), r.target_mpki,
             round(r.measured_cpi, 2), r.target_cpi,
             "taker" if r.capacity_sensitive else "donor/streamer"]
            for r in rows
        ],
        title="Benchmark calibration vs Table 3",
    )
