"""Interconnect-bandwidth analysis (Section 6.3's bandwidth argument).

The paper argues that ASCC/AVGCC save bandwidth — increasingly valuable as
core counts grow and prefetchers consume more of it.  This module turns
the :class:`~repro.interconnect.bus.BusTraffic` counters into a per-kilo-
instruction interconnect load and compares schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SystemResult


@dataclass(frozen=True)
class BandwidthReport:
    """Interconnect load of one run, normalised per kilo-instruction."""

    scheme: str
    workload: str
    flits_per_kiloinstruction: float
    data_messages: int
    control_messages: int

    def reduction_versus(self, baseline: "BandwidthReport") -> float:
        """Fractional interconnect-load reduction over the baseline."""
        if baseline.flits_per_kiloinstruction <= 0:
            raise ValueError("baseline produced no interconnect traffic")
        return 1.0 - self.flits_per_kiloinstruction / baseline.flits_per_kiloinstruction


def bandwidth_report(result: SystemResult) -> BandwidthReport:
    """Summarise a run's interconnect load.

    Traffic counters cover the whole run (including warmup), so reductions
    should always be computed against a baseline measured identically.
    """
    instructions = sum(c.instructions for c in result.cores)
    flits = result.traffic.total_flits()
    return BandwidthReport(
        scheme=result.scheme,
        workload=result.workload,
        flits_per_kiloinstruction=1000.0 * flits / instructions if instructions else 0.0,
        data_messages=result.traffic.data_messages(),
        control_messages=result.traffic.control_messages(),
    )
