"""ASCII table and bar-series formatting for experiment outputs.

Every experiment module renders its result through these helpers so the
benchmark harness prints rows comparable, column by column, with the
paper's tables and figures.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float, signed: bool = True) -> str:
    """0.078 -> '+7.8%'."""
    sign = "+" if signed else ""
    return f"{value * 100:{sign}.1f}%"


def format_series(
    label: str, pairs: Iterable[tuple[str, float]], unit: str = "%"
) -> str:
    """Render a figure-style bar series as 'name value' lines."""
    lines = [label]
    for name, value in pairs:
        shown = value * 100 if unit == "%" else value
        bar = "#" * max(0, min(60, int(round(abs(shown)))))
        lines.append(f"  {name:<18} {shown:+8.2f}{unit} {bar}")
    return "\n".join(lines)


def format_histogram(
    label: str, counts: Iterable[tuple[str, int]], width: int = 40
) -> str:
    """Render labelled counts as an ASCII bar histogram.

    Bars scale to the largest count; used by ``repro stats`` for SSL
    role/state histograms.
    """
    items = [(name, count) for name, count in counts]
    top = max((count for _name, count in items), default=0)
    lines = [label]
    for name, count in items:
        bar = "#" * (0 if top <= 0 else max(0, int(round(width * count / top))))
        lines.append(f"  {name:<14} {count:>8} {bar}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)
