"""Way-restriction sweeps: the machinery behind Figures 1 and 2.

Figure 1 runs each benchmark alone on a 2 MB/16-way cache with 2..16 ways
enabled (plus full associativity) and reports MPKI and CPI.  Figure 2
classifies each *set* as **favored** (its MPKI keeps dropping as ways are
added) or **constant** (the drop is below 1 % relative to two fewer ways).

Way restriction keeps the set count fixed while shrinking associativity —
exactly "the remaining ways are disabled" — via
:meth:`~repro.cache.geometry.CacheGeometry.with_ways`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policies.private_lru import PrivateLRU
from repro.sim.config import ScaleModel, SystemConfig
from repro.sim.engine import Engine
from repro.sim.system import PrivateHierarchy
from repro.workloads.spec2006 import benchmark

#: Ways enabled in the Figure 1 sweep (the last point is full assoc).
FIGURE1_WAYS = [2, 4, 6, 8, 10, 12, 14, 16]


class SetStatsProbe(PrivateLRU):
    """Baseline policy that additionally records per-set miss counts."""

    name = "baseline+probe"

    def _setup(self) -> None:
        assert self.geometry is not None
        self.set_accesses = [0] * self.geometry.sets
        self.set_misses = [0] * self.geometry.sets

    def on_access(self, cache_id: int, set_idx: int, outcome: str) -> None:
        self.set_accesses[set_idx] += 1
        if outcome != "local":
            self.set_misses[set_idx] += 1


@dataclass(frozen=True)
class SweepPoint:
    """One benchmark at one way count."""

    code: int
    ways: int
    full_assoc: bool
    mpki: float
    cpi: float
    set_misses: tuple[int, ...]
    instructions: int

    def set_mpki(self, set_idx: int) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.set_misses[set_idx] / self.instructions


def run_way_point(
    code: int,
    ways: int,
    full_assoc: bool = False,
    scale: ScaleModel = ScaleModel(),
    quota: int = 120_000,
    warmup: int = 60_000,
    seed: int = 11,
) -> SweepPoint:
    """Run one benchmark alone with ``ways`` enabled of the sweep cache."""
    sweep = scale.sweep_l2()
    geometry = sweep.fully_associative() if full_assoc else sweep.with_ways(ways)
    config = SystemConfig(
        num_cores=1,
        l2_geometry=geometry,
        l1_geometry=scale.l1(),
        tick_interval=scale.tick_interval(),
        seed=seed,
        quota=quota,
    )
    probe = SetStatsProbe()
    hierarchy = PrivateHierarchy(config, probe)
    workload = benchmark(code).instantiate(scale, base=1 << 32)
    Engine(hierarchy, [workload], quota, seed, warmup).run()
    stats = hierarchy.stats[0]
    return SweepPoint(
        code=code,
        ways=geometry.ways,
        full_assoc=full_assoc,
        mpki=stats.mpki,
        cpi=stats.cpi,
        set_misses=tuple(probe.set_misses),
        instructions=stats.instructions,
    )


def sweep_benchmark(
    code: int,
    ways_list: list[int] | None = None,
    include_full_assoc: bool = True,
    scale: ScaleModel = ScaleModel(),
    quota: int = 120_000,
    warmup: int = 60_000,
) -> list[SweepPoint]:
    """Figure 1 sweep for one benchmark."""
    points = [
        run_way_point(code, ways, scale=scale, quota=quota, warmup=warmup)
        for ways in (ways_list or FIGURE1_WAYS)
    ]
    if include_full_assoc:
        points.append(
            run_way_point(code, 0, full_assoc=True, scale=scale, quota=quota, warmup=warmup)
        )
    return points


@dataclass(frozen=True)
class SetClassification:
    """Figure 2 outcome for one way count."""

    code: int
    ways: int
    favored_fraction: float
    constant_fraction: float


def classify_sets(
    previous: SweepPoint, current: SweepPoint, threshold: float = 0.01
) -> SetClassification:
    """Apply the paper's 1 % rule between two sweep points (ways-2, ways).

    A set is *constant* when its MPKI does not decrease, or decreases by
    less than ``threshold`` relative to the previous (two fewer ways)
    point; otherwise it is *favored*.
    """
    sets = len(current.set_misses)
    favored = 0
    for s in range(sets):
        prev_mpki = previous.set_mpki(s)
        cur_mpki = current.set_mpki(s)
        if prev_mpki > 0 and cur_mpki < prev_mpki * (1.0 - threshold):
            favored += 1
    return SetClassification(
        code=current.code,
        ways=current.ways,
        favored_fraction=favored / sets,
        constant_fraction=1.0 - favored / sets,
    )
