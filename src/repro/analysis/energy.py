"""Memory-hierarchy energy model.

The paper reports 25 %/29 % average power-consumption reductions for AVGCC
(Section 6.2) without detailing its power model; the reductions track the
off-chip access reduction, since a DRAM access costs orders of magnitude
more energy than an on-chip one.  We use a standard event-energy model with
relative costs (normalised to one local L2 access): a remote hit moves a
line across the chip, a DRAM access dominates everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SystemResult


@dataclass(frozen=True)
class EnergyModel:
    """Relative energy per event (local L2 access = 1)."""

    l2_access: float = 1.0
    remote_transfer: float = 2.5
    dram_access: float = 60.0
    snoop: float = 0.2

    def energy(self, result: SystemResult) -> float:
        """Total memory-hierarchy energy of a run (relative units)."""
        t = result.traffic
        l2_events = t.local_hits + t.remote_hits + t.memory_fetches
        return (
            l2_events * self.l2_access
            + (t.remote_hits + t.spills + 2 * t.swaps) * self.remote_transfer
            + (t.memory_fetches + t.writebacks + t.prefetch_fills) * self.dram_access
            + t.snoop_broadcasts * self.snoop
        )

    def reduction(self, result: SystemResult, baseline: SystemResult) -> float:
        """Fractional energy reduction over the baseline run."""
        base = self.energy(baseline)
        if base <= 0:
            raise ValueError("baseline run consumed no energy")
        return 1.0 - self.energy(result) / base
