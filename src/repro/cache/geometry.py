"""Cache geometry: size/associativity/line-size arithmetic.

Every cache in the simulator (L1s, private L2s, the banked shared LLC and
the way-restricted caches used for the Figure 1/2 sweeps) is described by a
:class:`CacheGeometry`.  Addresses are byte addresses; a *line address* is
the byte address shifted right by ``offset_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    return value.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total data capacity in bytes.
    ways:
        Associativity.  ``ways == lines`` yields a fully-associative cache.
    line_bytes:
        Line (block) size in bytes.  The paper uses 32 B throughout.
    """

    size_bytes: int
    ways: int
    line_bytes: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("geometry fields must be positive")
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"size {self.size_bytes} not divisible by ways*line "
                f"({self.ways}*{self.line_bytes})"
            )
        if not _is_power_of_two(self.sets):
            raise ValueError(f"number of sets must be a power of two: {self.sets}")

    @property
    def lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def offset_bits(self) -> int:
        return _log2(self.line_bytes)

    @property
    def index_bits(self) -> int:
        return _log2(self.sets)

    def line_addr(self, byte_addr: int) -> int:
        """Convert a byte address to a line address."""
        return byte_addr >> self.offset_bits

    def set_index(self, line_addr: int) -> int:
        """Set index for a line address."""
        return line_addr & (self.sets - 1)

    def tag(self, line_addr: int) -> int:
        """Tag bits for a line address."""
        return line_addr >> self.index_bits

    def tag_bits(self, address_bits: int = 42) -> int:
        """Width of the stored tag for ``address_bits``-bit addresses.

        Matches the paper's Table 5 computation:
        ``tag = address_bits - log2(sets) - log2(line_bytes)``.
        """
        return address_bits - self.index_bits - self.offset_bits

    def with_ways(self, ways: int) -> "CacheGeometry":
        """Same number of sets, different associativity.

        Used by the Figure 1/2 way-enabling sweeps, where ways of a 16-way
        cache are *disabled*: the set count stays fixed while the usable
        associativity shrinks.
        """
        return CacheGeometry(
            size_bytes=self.sets * ways * self.line_bytes,
            ways=ways,
            line_bytes=self.line_bytes,
        )

    def fully_associative(self) -> "CacheGeometry":
        """Same capacity as a single set."""
        return CacheGeometry(
            size_bytes=self.size_bytes, ways=self.lines, line_bytes=self.line_bytes
        )

    def scaled(self, factor: float) -> "CacheGeometry":
        """Scale capacity by ``factor`` keeping ways and line size.

        ``factor`` must keep the set count a positive power of two.
        """
        new_size = int(self.size_bytes * factor)
        return CacheGeometry(new_size, self.ways, self.line_bytes)
