"""Cache substrate: geometry, insertion policies, arrays, L1 filter."""

from repro.cache.cache import (
    CACHE_BACKENDS,
    CacheArray,
    DictCacheArray,
    Line,
    SlotCacheArray,
    resolve_backend,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.insertion import DEFAULT_EPSILON, InsertionPolicy, insertion_position
from repro.cache.l1 import L1Cache

__all__ = [
    "CACHE_BACKENDS",
    "CacheArray",
    "CacheGeometry",
    "DEFAULT_EPSILON",
    "DictCacheArray",
    "InsertionPolicy",
    "L1Cache",
    "Line",
    "SlotCacheArray",
    "insertion_position",
    "resolve_backend",
]
