"""Cache substrate: geometry, insertion policies, arrays, L1 filter."""

from repro.cache.cache import CacheArray, Line
from repro.cache.geometry import CacheGeometry
from repro.cache.insertion import DEFAULT_EPSILON, InsertionPolicy, insertion_position
from repro.cache.l1 import L1Cache

__all__ = [
    "CacheArray",
    "CacheGeometry",
    "DEFAULT_EPSILON",
    "InsertionPolicy",
    "L1Cache",
    "Line",
    "insertion_position",
]
