"""Private write-through L1 filter cache.

The paper's cores have private 32 kB write-through L1s in front of inclusive
private L2s.  For the LLC policies under study the L1's only relevant roles
are (a) filtering the access stream the L2 sees and (b) being
back-invalidated when the inclusive L2 drops a line.  This module models
exactly that: LRU, write-through (stores never create dirty L1 state),
write-allocate, with an ``invalidate`` hook for inclusion.

The L1 never needs line state or flags — membership and recency are the
whole model — so kernel v2 stores bare line addresses in per-set ordered
mappings (first key = MRU): no :class:`~repro.cache.cache.Line` object is
ever allocated on this path, which previously cost one allocation per L1
fill (one per L1 miss, i.e. per simulated L2 access).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.cache.geometry import CacheGeometry


class L1Cache:
    """A small LRU filter cache in front of a private L2."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._mask = geometry.sets - 1
        self._ways = geometry.ways
        #: Per-set recency stacks: ordered ``line addr -> None`` mappings,
        #: first key = MRU.  The L1 filters every single trace record, so
        #: ``access`` runs directly against these.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.sets)
        ]
        # Per-set MRU line address: consecutive touches of the same line
        # (the dominant pattern under dwell) hit with one list index and
        # one compare, skipping the stack update that would be a no-op.
        self._mru = [-1] * geometry.sets
        self._len = 0
        self.hits = 0
        self.misses = 0
        self.back_invalidations = 0

    def access(self, line_addr: int) -> bool:
        """Look up a line, promoting on hit.  Returns True on hit.

        Loads and stores behave identically here: the L1 is write-through,
        so a store hit only generates L2 write traffic (accounted by the
        caller) and never dirties the L1.
        """
        set_idx = line_addr & self._mask
        if self._mru[set_idx] == line_addr:
            self.hits += 1
            return True
        lines = self._sets[set_idx]
        if line_addr in lines:
            lines.move_to_end(line_addr, last=False)
            self._mru[set_idx] = line_addr
            self.hits += 1
            return True
        self.misses += 1
        return False

    def allocate(self, line_addr: int) -> None:
        """Install a line fetched from the L2 (silent LRU eviction)."""
        set_idx = line_addr & self._mask
        lines = self._sets[set_idx]
        if line_addr in lines:
            return
        if len(lines) >= self._ways:
            evicted = lines.popitem()[0]
            if self._mru[set_idx] == evicted:  # only possible when ways == 1
                self._mru[set_idx] = -1
        else:
            self._len += 1
        lines[line_addr] = None
        lines.move_to_end(line_addr, last=False)
        self._mru[set_idx] = line_addr

    def invalidate(self, line_addr: int) -> bool:
        """Back-invalidation from the inclusive L2.  Returns True if held."""
        set_idx = line_addr & self._mask
        lines = self._sets[set_idx]
        if line_addr not in lines:
            return False
        del lines[line_addr]
        self._len -= 1
        if self._mru[set_idx] == line_addr:
            self._mru[set_idx] = -1
        self.back_invalidations += 1
        return True

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr & self._mask]

    def resident_addrs(self) -> Iterator[int]:
        """Every line address currently held (inclusion checks)."""
        for lines in self._sets:
            yield from lines

    def __len__(self) -> int:
        return self._len
