"""Private write-through L1 filter cache.

The paper's cores have private 32 kB write-through L1s in front of inclusive
private L2s.  For the LLC policies under study the L1's only relevant roles
are (a) filtering the access stream the L2 sees and (b) being
back-invalidated when the inclusive L2 drops a line.  This module models
exactly that: LRU, write-through (stores never create dirty L1 state),
write-allocate, with an ``invalidate`` hook for inclusion.
"""

from __future__ import annotations

from repro.cache.cache import CacheArray, Line
from repro.cache.geometry import CacheGeometry
from repro.coherence.protocol import Mesi


class L1Cache:
    """A small LRU filter cache in front of a private L2."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self._array = CacheArray(geometry)
        # The L1 filters every single trace record, so ``access`` inlines
        # the array's probe-and-promote against its internal stacks.
        self._sets = self._array._sets
        self._mask = self._array.set_mask
        self._ways = geometry.ways
        # Per-set MRU line address: consecutive touches of the same line
        # (the dominant pattern under dwell) hit with one list index and
        # one compare, skipping the stack update that would be a no-op.
        self._mru = [-1] * geometry.sets
        self.hits = 0
        self.misses = 0
        self.back_invalidations = 0

    @property
    def geometry(self) -> CacheGeometry:
        return self._array.geometry

    def access(self, line_addr: int) -> bool:
        """Look up a line, promoting on hit.  Returns True on hit.

        Loads and stores behave identically here: the L1 is write-through,
        so a store hit only generates L2 write traffic (accounted by the
        caller) and never dirties the L1.
        """
        set_idx = line_addr & self._mask
        if self._mru[set_idx] == line_addr:
            self.hits += 1
            return True
        lines = self._sets[set_idx]
        if line_addr in lines:
            lines.move_to_end(line_addr, last=False)
            self._mru[set_idx] = line_addr
            self.hits += 1
            return True
        self.misses += 1
        return False

    def allocate(self, line_addr: int) -> None:
        """Install a line fetched from the L2 (silent LRU eviction)."""
        set_idx = line_addr & self._mask
        lines = self._sets[set_idx]
        if line_addr in lines:
            return
        # Specialised MRU fill: the L1 has no directory and always inserts
        # at the top of the stack, so the generic positional path is skipped.
        if len(lines) >= self._ways:
            evicted = lines.popitem()[0]
            if self._mru[set_idx] == evicted:  # only possible when ways == 1
                self._mru[set_idx] = -1
        else:
            self._array._len += 1
        lines[line_addr] = Line(line_addr, Mesi.EXCLUSIVE)
        lines.move_to_end(line_addr, last=False)
        self._mru[set_idx] = line_addr

    def invalidate(self, line_addr: int) -> bool:
        """Back-invalidation from the inclusive L2.  Returns True if held."""
        line = self._array.invalidate(line_addr)
        if line is not None:
            set_idx = line_addr & self._mask
            if self._mru[set_idx] == line_addr:
                self._mru[set_idx] = -1
            self.back_invalidations += 1
            return True
        return False

    def contains(self, line_addr: int) -> bool:
        return self._array.contains(line_addr)

    def __len__(self) -> int:
        return len(self._array)
