"""Insertion policies for the recency stack.

The replacement policy everywhere is LRU; what varies between schemes is the
*insertion position* of a freshly allocated line in the recency stack
(position 0 = MRU, ``ways - 1`` = LRU):

* ``MRU``   — the traditional policy: insert at the top of the stack.
* ``LRU``   — insert at the bottom (used by BIP for most insertions).
* ``LRU_1`` — insert one above the bottom (used by SABIP).
* ``BIP``   — Bimodal Insertion Policy (Qureshi et al., ISCA'07): MRU with a
  low probability ``epsilon``, LRU otherwise.  Provides thrashing
  protection for workloads whose working set exceeds the cache.
* ``SABIP`` — the paper's Spilling-Aware BIP: MRU with probability
  ``epsilon``, *LRU-1* otherwise, so that the most recently inserted line is
  protected from being evicted by an incoming spilled line (which would be
  placed below it and evicted first).

The paper (and our defaults) use ``epsilon = 1/32``.
"""

from __future__ import annotations

import enum
from random import Random

#: Probability of inserting at MRU under BIP/SABIP (paper Section 6).
DEFAULT_EPSILON = 1.0 / 32.0


class InsertionPolicy(enum.Enum):
    """Where a newly allocated line enters the recency stack."""

    MRU = "mru"
    LRU = "lru"
    LRU_1 = "lru-1"
    BIP = "bip"
    SABIP = "sabip"


def insertion_position(
    policy: InsertionPolicy,
    ways: int,
    rng: Random,
    epsilon: float = DEFAULT_EPSILON,
) -> int:
    """Recency-stack position for a new line under ``policy``.

    ``rng`` supplies the bimodal coin flips so that simulations are
    reproducible.  For a 1-way cache every policy degenerates to position 0.
    """
    if ways <= 1:
        return 0
    if policy is InsertionPolicy.MRU:
        return 0
    if policy is InsertionPolicy.LRU:
        return ways - 1
    if policy is InsertionPolicy.LRU_1:
        return ways - 2
    if policy is InsertionPolicy.BIP:
        return 0 if rng.random() < epsilon else ways - 1
    if policy is InsertionPolicy.SABIP:
        return 0 if rng.random() < epsilon else ways - 2
    raise ValueError(f"unknown insertion policy: {policy!r}")
