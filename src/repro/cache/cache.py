"""Set-associative cache array with explicit recency stacks.

:class:`CacheArray` is the storage substrate shared by the private L2s, the
banked shared LLC and the L1 filter caches.  Each set is a list of
:class:`Line` objects ordered by recency (index 0 = MRU, last = LRU), which
makes the insertion-position semantics of BIP/SABIP direct: inserting a line
at position *p* places it *p* steps from the top of the stack.

When constructed with a :class:`~repro.coherence.directory.PresenceDirectory`
the array keeps the chip-wide presence map in sync on every fill, eviction
and invalidation, so "last copy on chip" queries are always consistent with
the actual contents.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.geometry import CacheGeometry
from repro.coherence.directory import PresenceDirectory
from repro.coherence.protocol import Mesi


class Line:
    """One cache line: address, MESI state and scheme-specific flags.

    ``spilled`` marks lines that entered this cache through a spill from a
    peer (used for migration-on-hit and the hits-per-spill statistic).
    ``shared_region`` marks lines living in the ECC shared region.
    ``prefetched`` marks lines brought in by the stride prefetcher that have
    not yet been demanded.
    """

    __slots__ = ("addr", "state", "spilled", "shared_region", "prefetched")

    def __init__(
        self,
        addr: int,
        state: Mesi,
        spilled: bool = False,
        shared_region: bool = False,
        prefetched: bool = False,
    ) -> None:
        self.addr = addr
        self.state = state
        self.spilled = spilled
        self.shared_region = shared_region
        self.prefetched = prefetched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("s", self.spilled),
                ("r", self.shared_region),
                ("p", self.prefetched),
            )
            if on
        )
        return f"Line({self.addr:#x},{self.state.value}{',' + flags if flags else ''})"


class CacheArray:
    """A set-associative cache with LRU recency stacks.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    cache_id:
        Identifier used in the presence directory (ignored when
        ``directory`` is ``None``).
    directory:
        Optional chip-wide presence map kept in sync with the contents.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        cache_id: int = 0,
        directory: Optional[PresenceDirectory] = None,
    ) -> None:
        self.geometry = geometry
        self.cache_id = cache_id
        self.directory = directory
        self.sets: list[list[Line]] = [[] for _ in range(geometry.sets)]
        self._index: dict[int, int] = {}  # line addr -> set index (fast probe)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, line_addr: int, promote: bool = True) -> Optional[Line]:
        """Find ``line_addr``; optionally promote it to MRU.

        Returns the :class:`Line` on a hit, ``None`` on a miss.
        """
        if line_addr not in self._index:
            return None
        lines = self.sets[self.geometry.set_index(line_addr)]
        for pos, line in enumerate(lines):
            if line.addr == line_addr:
                if promote and pos != 0:
                    del lines[pos]
                    lines.insert(0, line)
                return line
        raise AssertionError("index/set desync")  # pragma: no cover

    def probe(self, line_addr: int) -> Optional[Line]:
        """Find ``line_addr`` without touching recency state."""
        return self.lookup(line_addr, promote=False)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._index

    def recency_position(self, line_addr: int) -> Optional[int]:
        """Stack position of a line (0 = MRU), or ``None`` if absent."""
        if line_addr not in self._index:
            return None
        lines = self.sets[self.geometry.set_index(line_addr)]
        for pos, line in enumerate(lines):
            if line.addr == line_addr:
                return pos
        raise AssertionError("index/set desync")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Fill / evict / invalidate
    # ------------------------------------------------------------------ #

    def fill(
        self,
        line: Line,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[Line]:
        """Insert ``line`` at recency ``position``; return the victim, if any.

        When the set is full, the line at ``victim_position`` (default: the
        LRU end) is evicted first.  ``position`` is clamped to the resulting
        set occupancy so "insert at LRU" works in a partially filled set.
        The line must not already be present.
        """
        if line.addr in self._index:
            raise ValueError(f"line {line.addr:#x} already present")
        set_idx = self.geometry.set_index(line.addr)
        lines = self.sets[set_idx]
        victim: Optional[Line] = None
        if len(lines) >= self.geometry.ways:
            if victim_position is None:
                victim_position = len(lines) - 1
            victim = lines.pop(victim_position)
            self._drop(victim)
        position = min(position, len(lines))
        lines.insert(position, line)
        self._index[line.addr] = set_idx
        if self.directory is not None:
            self.directory.add(line.addr, self.cache_id)
        return victim

    def evict(self, line_addr: int) -> Line:
        """Remove a specific line (e.g. the swap partner) and return it."""
        line = self._remove(line_addr)
        return line

    def invalidate(self, line_addr: int) -> Optional[Line]:
        """Remove a line if present (coherence invalidation, back-inval)."""
        if line_addr not in self._index:
            return None
        return self._remove(line_addr)

    def victim_candidate(self, set_idx: int, position: Optional[int] = None) -> Optional[Line]:
        """Peek at the line that :meth:`fill` would evict (LRU by default).

        Returns ``None`` while the set still has free ways.
        """
        lines = self.sets[set_idx]
        if len(lines) < self.geometry.ways:
            return None
        return lines[position if position is not None else len(lines) - 1]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def set_lines(self, set_idx: int) -> list[Line]:
        """The recency stack of a set (MRU first).  Do not mutate."""
        return self.sets[set_idx]

    def occupancy(self, set_idx: int) -> int:
        return len(self.sets[set_idx])

    def iter_lines(self) -> Iterator[Line]:
        for lines in self.sets:
            yield from lines

    def __len__(self) -> int:
        """Number of valid lines currently stored."""
        return len(self._index)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _remove(self, line_addr: int) -> Line:
        set_idx = self._index.get(line_addr)
        if set_idx is None:
            raise KeyError(f"line {line_addr:#x} not present")
        lines = self.sets[set_idx]
        for pos, line in enumerate(lines):
            if line.addr == line_addr:
                del lines[pos]
                self._drop(line)
                return line
        raise AssertionError("index/set desync")  # pragma: no cover

    def _drop(self, line: Line) -> None:
        del self._index[line.addr]
        if self.directory is not None:
            self.directory.remove(line.addr, self.cache_id)
