"""Set-associative cache array with explicit recency stacks.

:class:`CacheArray` is the storage substrate shared by the private L2s, the
banked shared LLC and the L1 filter caches.  Each set is an ordered mapping
``line addr -> Line`` whose iteration order is the recency stack (first key
= MRU, last key = LRU), which keeps the insertion-position semantics of
BIP/SABIP direct — inserting a line at position *p* places it *p* steps from
the top of the stack — while making the hot operations (hit probe, MRU
promotion, LRU eviction, targeted removal) O(1) dictionary operations
instead of linear scans over the set.

When constructed with a :class:`~repro.coherence.directory.PresenceDirectory`
the array keeps the chip-wide presence map in sync on every fill, eviction
and invalidation, so "last copy on chip" queries are always consistent with
the actual contents.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import islice
from typing import Iterator, Optional

from repro.cache.geometry import CacheGeometry
from repro.coherence.directory import PresenceDirectory
from repro.coherence.protocol import Mesi


class Line:
    """One cache line: address, MESI state and scheme-specific flags.

    ``spilled`` marks lines that entered this cache through a spill from a
    peer (used for migration-on-hit and the hits-per-spill statistic).
    ``shared_region`` marks lines living in the ECC shared region.
    ``prefetched`` marks lines brought in by the stride prefetcher that have
    not yet been demanded.
    """

    __slots__ = ("addr", "state", "spilled", "shared_region", "prefetched")

    def __init__(
        self,
        addr: int,
        state: Mesi,
        spilled: bool = False,
        shared_region: bool = False,
        prefetched: bool = False,
    ) -> None:
        self.addr = addr
        self.state = state
        self.spilled = spilled
        self.shared_region = shared_region
        self.prefetched = prefetched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("s", self.spilled),
                ("r", self.shared_region),
                ("p", self.prefetched),
            )
            if on
        )
        return f"Line({self.addr:#x},{self.state.value}{',' + flags if flags else ''})"


class CacheArray:
    """A set-associative cache with LRU recency stacks.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    cache_id:
        Identifier used in the presence directory (ignored when
        ``directory`` is ``None``).
    directory:
        Optional chip-wide presence map kept in sync with the contents.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        cache_id: int = 0,
        directory: Optional[PresenceDirectory] = None,
    ) -> None:
        self.geometry = geometry
        self.cache_id = cache_id
        self.directory = directory
        #: ``line_addr & set_mask`` is the set index (sets are a power of two).
        self.set_mask = geometry.sets - 1
        self._ways = geometry.ways
        self._sets: list[OrderedDict[int, Line]] = [
            OrderedDict() for _ in range(geometry.sets)
        ]
        self._len = 0

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, line_addr: int, promote: bool = True) -> Optional[Line]:
        """Find ``line_addr``; optionally promote it to MRU.

        Returns the :class:`Line` on a hit, ``None`` on a miss.
        """
        lines = self._sets[line_addr & self.set_mask]
        line = lines.get(line_addr)
        if line is not None and promote:
            lines.move_to_end(line_addr, last=False)
        return line

    def probe(self, line_addr: int) -> Optional[Line]:
        """Find ``line_addr`` without touching recency state."""
        return self._sets[line_addr & self.set_mask].get(line_addr)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr & self.set_mask]

    def recency_position(self, line_addr: int) -> Optional[int]:
        """Stack position of a line (0 = MRU), or ``None`` if absent."""
        lines = self._sets[line_addr & self.set_mask]
        if line_addr not in lines:
            return None
        for pos, addr in enumerate(lines):
            if addr == line_addr:
                return pos
        raise AssertionError("set desync")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Fill / evict / invalidate
    # ------------------------------------------------------------------ #

    def fill(
        self,
        line: Line,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[Line]:
        """Insert ``line`` at recency ``position``; return the victim, if any.

        When the set is full, the line at ``victim_position`` (default: the
        LRU end) is evicted first.  ``position`` is clamped to the resulting
        set occupancy so "insert at LRU" works in a partially filled set.
        The line must not already be present.
        """
        addr = line.addr
        lines = self._sets[addr & self.set_mask]
        if addr in lines:
            raise ValueError(f"line {addr:#x} already present")
        victim: Optional[Line] = None
        if len(lines) >= self._ways:
            if victim_position is None or victim_position == len(lines) - 1:
                victim = lines.popitem()[1]
            else:
                victim_addr = next(islice(iter(lines), victim_position, None))
                victim = lines.pop(victim_addr)
            self._drop(victim)
        occupancy = len(lines)
        lines[addr] = line  # appended at the LRU end
        if position <= 0:
            lines.move_to_end(addr, last=False)
        elif position < occupancy:
            # Splice: re-append the keys that must stay behind the new line.
            move = lines.move_to_end
            for key in list(islice(iter(lines), position, occupancy)):
                move(key)
        self._len += 1
        if self.directory is not None:
            self.directory.add(addr, self.cache_id)
        return victim

    def evict(self, line_addr: int) -> Line:
        """Remove a specific line (e.g. the swap partner) and return it."""
        line = self._sets[line_addr & self.set_mask].pop(line_addr, None)
        if line is None:
            raise KeyError(f"line {line_addr:#x} not present")
        self._drop(line)
        return line

    def invalidate(self, line_addr: int) -> Optional[Line]:
        """Remove a line if present (coherence invalidation, back-inval)."""
        line = self._sets[line_addr & self.set_mask].pop(line_addr, None)
        if line is None:
            return None
        self._drop(line)
        return line

    def victim_candidate(self, set_idx: int, position: Optional[int] = None) -> Optional[Line]:
        """Peek at the line that :meth:`fill` would evict (LRU by default).

        Returns ``None`` while the set still has free ways.
        """
        lines = self._sets[set_idx]
        if len(lines) < self._ways:
            return None
        if position is None or position == len(lines) - 1:
            return lines[next(reversed(lines))]
        if not 0 <= position < len(lines):
            raise IndexError(f"victim position {position} out of range")
        return next(islice(lines.values(), position, None))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def set_lines(self, set_idx: int) -> list[Line]:
        """The recency stack of a set (MRU first), as a snapshot list."""
        return list(self._sets[set_idx].values())

    def occupancy(self, set_idx: int) -> int:
        return len(self._sets[set_idx])

    def iter_lines(self) -> Iterator[Line]:
        for lines in self._sets:
            yield from lines.values()

    def __len__(self) -> int:
        """Number of valid lines currently stored."""
        return self._len

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _drop(self, line: Line) -> None:
        self._len -= 1
        if self.directory is not None:
            self.directory.remove(line.addr, self.cache_id)
