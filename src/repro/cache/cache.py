"""Set-associative cache arrays with explicit recency stacks.

Two interchangeable storage backends implement the same contract (the
"kernel v2" tentpole):

* :class:`SlotCacheArray` — the default.  One flat ``addr -> Line`` index
  per array (addresses map to unique sets, so one hash probe replaces the
  per-set mapping) plus per-set recency stacks of pooled line slots kept
  as small C lists (MRU first).  Hits touch one dict probe and, only when
  the line is not already MRU, one C-speed splice of an ≤8-entry list;
  fills recycle evicted :class:`Line` slots through a free pool via
  :meth:`~SlotCacheArray.fill_fields`/:meth:`~SlotCacheArray.release`,
  so the steady-state hit/promote/evict path allocates nothing and never
  rehashes an ordered mapping.
* :class:`DictCacheArray` — the previous implementation, kept verbatim as
  a reference: each set is an ordered mapping ``line addr -> Line`` whose
  iteration order is the recency stack (first key = MRU).  It exists for
  differential testing (``tests/test_cache_array_oracle.py`` drives both
  backends with identical op streams) and as a config-selectable fallback.

Both keep the insertion-position semantics of BIP/SABIP direct —
inserting a line at position *p* places it *p* steps from the top of the
stack — and when constructed with a
:class:`~repro.coherence.directory.PresenceDirectory` they keep the
chip-wide presence map in sync on every fill, eviction and invalidation.

``CacheArray`` names the default backend; :func:`resolve_backend` maps a
config string (``"slot"``/``"dict"``) to a class, honouring the
``REPRO_CACHE_BACKEND`` environment variable for the default.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from itertools import islice
from typing import Iterator, Optional

from repro.cache.geometry import CacheGeometry
from repro.coherence.directory import PresenceDirectory
from repro.coherence.protocol import Mesi


class Line:
    """One cache line: address, MESI state and scheme-specific flags.

    ``spilled`` marks lines that entered this cache through a spill from a
    peer (used for migration-on-hit and the hits-per-spill statistic).
    ``shared_region`` marks lines living in the ECC shared region.
    ``prefetched`` marks lines brought in by the stride prefetcher that have
    not yet been demanded.
    """

    __slots__ = ("addr", "state", "spilled", "shared_region", "prefetched")

    def __init__(
        self,
        addr: int,
        state: Mesi,
        spilled: bool = False,
        shared_region: bool = False,
        prefetched: bool = False,
    ) -> None:
        self.addr = addr
        self.state = state
        self.spilled = spilled
        self.shared_region = shared_region
        self.prefetched = prefetched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("s", self.spilled),
                ("r", self.shared_region),
                ("p", self.prefetched),
            )
            if on
        )
        return f"Line({self.addr:#x},{self.state.value}{',' + flags if flags else ''})"


class SlotCacheArray:
    """A set-associative cache: flat line index + per-set slot stacks.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    cache_id:
        Identifier used in the presence directory (ignored when
        ``directory`` is ``None``).
    directory:
        Optional chip-wide presence map kept in sync with the contents.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        cache_id: int = 0,
        directory: Optional[PresenceDirectory] = None,
    ) -> None:
        self.geometry = geometry
        self.cache_id = cache_id
        self.directory = directory
        #: ``line_addr & set_mask`` is the set index (sets are a power of two).
        self.set_mask = geometry.sets - 1
        self._ways = geometry.ways
        #: Per-set recency stacks, MRU first.  The stacks hold the *same*
        #: Line objects as ``_index``; a stack never exceeds the ways, so
        #: every splice is a C memmove over at most ``ways`` pointers.
        self._stacks: list[list[Line]] = [[] for _ in range(geometry.sets)]
        #: One flat ``addr -> Line`` map for the whole array: a line
        #: address selects a unique set, so a single hash probe answers
        #: probe/contains/lookup for every set at once.
        self._index: dict[int, Line] = {}
        #: Free slots recycled by :meth:`release` and reused by
        #: :meth:`fill_fields`: the demand alloc/evict path reuses one
        #: Line object per set-way instead of allocating per fill.
        self._pool: list[Line] = []

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, line_addr: int, promote: bool = True) -> Optional[Line]:
        """Find ``line_addr``; optionally promote it to MRU.

        Returns the :class:`Line` on a hit, ``None`` on a miss.
        """
        line = self._index.get(line_addr)
        if line is not None and promote:
            stack = self._stacks[line_addr & self.set_mask]
            if stack[0] is not line:
                stack.remove(line)
                stack.insert(0, line)
        return line

    def probe(self, line_addr: int) -> Optional[Line]:
        """Find ``line_addr`` without touching recency state."""
        return self._index.get(line_addr)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._index

    def recency_position(self, line_addr: int) -> Optional[int]:
        """Stack position of a line (0 = MRU), or ``None`` if absent."""
        line = self._index.get(line_addr)
        if line is None:
            return None
        return self._stacks[line_addr & self.set_mask].index(line)

    # ------------------------------------------------------------------ #
    # Fill / evict / invalidate
    # ------------------------------------------------------------------ #

    def fill(
        self,
        line: Line,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[Line]:
        """Insert ``line`` at recency ``position``; return the victim, if any.

        When the set is full, the line at ``victim_position`` (default: the
        LRU end) is evicted first.  ``position`` is clamped to the resulting
        set occupancy so "insert at LRU" works in a partially filled set.
        The line must not already be present.
        """
        addr = line.addr
        index = self._index
        if addr in index:
            raise ValueError(f"line {addr:#x} already present")
        stack = self._stacks[addr & self.set_mask]
        victim: Optional[Line] = None
        occupancy = len(stack)
        if occupancy >= self._ways:
            victim = stack.pop(
                occupancy - 1 if victim_position is None else victim_position
            )
            del index[victim.addr]
            if self.directory is not None:
                self.directory.remove(victim.addr, self.cache_id)
            occupancy -= 1
        if position <= 0:
            stack.insert(0, line)
        elif position >= occupancy:
            stack.append(line)
        else:
            stack.insert(position, line)
        index[addr] = line
        if self.directory is not None:
            self.directory.add(addr, self.cache_id)
        return victim

    def fill_fields(
        self,
        addr: int,
        state: Mesi,
        spilled: bool = False,
        shared_region: bool = False,
        prefetched: bool = False,
        *,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[Line]:
        """Allocation-free :meth:`fill`: builds the line from a pooled slot.

        Identical semantics to ``fill(Line(addr, state, ...), ...)`` except
        the Line object is recycled from the free pool when one is
        available (see :meth:`release`).
        """
        pool = self._pool
        if pool:
            line = pool.pop()
            line.addr = addr
            line.state = state
            line.spilled = spilled
            line.shared_region = shared_region
            line.prefetched = prefetched
        else:
            line = Line(addr, state, spilled, shared_region, prefetched)
        return self.fill(line, position, victim_position)

    def release(self, line: Line) -> None:
        """Return a detached line (an evict/invalidate result) to the pool.

        The caller must hold the only reference: the slot's fields are
        overwritten by the next :meth:`fill_fields`.
        """
        self._pool.append(line)

    def evict(self, line_addr: int) -> Line:
        """Remove a specific line (e.g. the swap partner) and return it."""
        line = self._index.pop(line_addr, None)
        if line is None:
            raise KeyError(f"line {line_addr:#x} not present")
        self._stacks[line_addr & self.set_mask].remove(line)
        if self.directory is not None:
            self.directory.remove(line_addr, self.cache_id)
        return line

    def invalidate(self, line_addr: int) -> Optional[Line]:
        """Remove a line if present (coherence invalidation, back-inval)."""
        line = self._index.pop(line_addr, None)
        if line is None:
            return None
        self._stacks[line_addr & self.set_mask].remove(line)
        if self.directory is not None:
            self.directory.remove(line_addr, self.cache_id)
        return line

    def victim_candidate(self, set_idx: int, position: Optional[int] = None) -> Optional[Line]:
        """Peek at the line that :meth:`fill` would evict (LRU by default).

        Returns ``None`` while the set still has free ways.
        """
        stack = self._stacks[set_idx]
        occupancy = len(stack)
        if occupancy < self._ways:
            return None
        if position is None:
            return stack[occupancy - 1]
        if not 0 <= position < occupancy:
            raise IndexError(f"victim position {position} out of range")
        return stack[position]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def set_lines(self, set_idx: int) -> list[Line]:
        """The recency stack of a set (MRU first), as a snapshot list."""
        return list(self._stacks[set_idx])

    def occupancy(self, set_idx: int) -> int:
        return len(self._stacks[set_idx])

    def check_integrity(self, set_idx: int) -> None:
        """Raise ``AssertionError`` if the set's internal state is corrupt.

        Verifies the backend-specific invariants the public API can hide:
        the recency stack is a duplicate-free permutation of the set's
        indexed lines, every line maps to this set, and occupancy never
        exceeds the associativity.  Used by the runtime sanitizer
        (:mod:`repro.verify`); read-only.
        """
        stack = self._stacks[set_idx]
        if len(stack) > self._ways:
            raise AssertionError(
                f"set {set_idx}: {len(stack)} lines exceed {self._ways} ways"
            )
        seen: set[int] = set()
        for line in stack:
            if line.addr in seen:
                raise AssertionError(
                    f"set {set_idx}: duplicate tag {line.addr:#x}"
                )
            seen.add(line.addr)
            if line.addr & self.set_mask != set_idx:
                raise AssertionError(
                    f"set {set_idx}: line {line.addr:#x} belongs to set "
                    f"{line.addr & self.set_mask}"
                )
            if self._index.get(line.addr) is not line:
                raise AssertionError(
                    f"set {set_idx}: stack and index disagree for "
                    f"{line.addr:#x}"
                )

    def iter_lines(self) -> Iterator[Line]:
        for stack in self._stacks:
            yield from stack

    def __len__(self) -> int:
        """Number of valid lines currently stored."""
        return len(self._index)


class DictCacheArray:
    """Reference backend: each set is an ordered ``addr -> Line`` mapping.

    This is the pre-kernel-v2 implementation, kept bit-for-bit so the
    differential fuzz harness can drive both backends with identical op
    streams, and selectable via ``SystemConfig.cache_backend = "dict"``.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        cache_id: int = 0,
        directory: Optional[PresenceDirectory] = None,
    ) -> None:
        self.geometry = geometry
        self.cache_id = cache_id
        self.directory = directory
        self.set_mask = geometry.sets - 1
        self._ways = geometry.ways
        self._sets: list[OrderedDict[int, Line]] = [
            OrderedDict() for _ in range(geometry.sets)
        ]
        self._len = 0

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, line_addr: int, promote: bool = True) -> Optional[Line]:
        lines = self._sets[line_addr & self.set_mask]
        line = lines.get(line_addr)
        if line is not None and promote:
            lines.move_to_end(line_addr, last=False)
        return line

    def probe(self, line_addr: int) -> Optional[Line]:
        return self._sets[line_addr & self.set_mask].get(line_addr)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr & self.set_mask]

    def recency_position(self, line_addr: int) -> Optional[int]:
        lines = self._sets[line_addr & self.set_mask]
        if line_addr not in lines:
            return None
        for pos, addr in enumerate(lines):
            if addr == line_addr:
                return pos
        raise AssertionError("set desync")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Fill / evict / invalidate
    # ------------------------------------------------------------------ #

    def fill(
        self,
        line: Line,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[Line]:
        addr = line.addr
        lines = self._sets[addr & self.set_mask]
        if addr in lines:
            raise ValueError(f"line {addr:#x} already present")
        victim: Optional[Line] = None
        if len(lines) >= self._ways:
            if victim_position is None or victim_position == len(lines) - 1:
                victim = lines.popitem()[1]
            else:
                victim_addr = next(islice(iter(lines), victim_position, None))
                victim = lines.pop(victim_addr)
            self._drop(victim)
        occupancy = len(lines)
        lines[addr] = line  # appended at the LRU end
        if position <= 0:
            lines.move_to_end(addr, last=False)
        elif position < occupancy:
            # Splice: re-append the keys that must stay behind the new line.
            move = lines.move_to_end
            for key in list(islice(iter(lines), position, occupancy)):
                move(key)
        self._len += 1
        if self.directory is not None:
            self.directory.add(addr, self.cache_id)
        return victim

    def fill_fields(
        self,
        addr: int,
        state: Mesi,
        spilled: bool = False,
        shared_region: bool = False,
        prefetched: bool = False,
        *,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[Line]:
        """Field-based fill (no pooling: the reference stays allocation-per-fill)."""
        return self.fill(
            Line(addr, state, spilled, shared_region, prefetched),
            position,
            victim_position,
        )

    def release(self, line: Line) -> None:
        """No-op: the reference backend does not recycle line objects."""

    def evict(self, line_addr: int) -> Line:
        line = self._sets[line_addr & self.set_mask].pop(line_addr, None)
        if line is None:
            raise KeyError(f"line {line_addr:#x} not present")
        self._drop(line)
        return line

    def invalidate(self, line_addr: int) -> Optional[Line]:
        line = self._sets[line_addr & self.set_mask].pop(line_addr, None)
        if line is None:
            return None
        self._drop(line)
        return line

    def victim_candidate(self, set_idx: int, position: Optional[int] = None) -> Optional[Line]:
        lines = self._sets[set_idx]
        if len(lines) < self._ways:
            return None
        if position is None or position == len(lines) - 1:
            return lines[next(reversed(lines))]
        if not 0 <= position < len(lines):
            raise IndexError(f"victim position {position} out of range")
        return next(islice(lines.values(), position, None))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def set_lines(self, set_idx: int) -> list[Line]:
        return list(self._sets[set_idx].values())

    def occupancy(self, set_idx: int) -> int:
        return len(self._sets[set_idx])

    def check_integrity(self, set_idx: int) -> None:
        """Raise ``AssertionError`` if the set's internal state is corrupt.

        Mirror of :meth:`SlotCacheArray.check_integrity` for the
        reference backend: key/line agreement, set membership, and
        occupancy within the associativity.
        """
        lines = self._sets[set_idx]
        if len(lines) > self._ways:
            raise AssertionError(
                f"set {set_idx}: {len(lines)} lines exceed {self._ways} ways"
            )
        for addr, line in lines.items():
            if line.addr != addr:
                raise AssertionError(
                    f"set {set_idx}: key {addr:#x} maps to line "
                    f"{line.addr:#x}"
                )
            if addr & self.set_mask != set_idx:
                raise AssertionError(
                    f"set {set_idx}: line {addr:#x} belongs to set "
                    f"{addr & self.set_mask}"
                )

    def iter_lines(self) -> Iterator[Line]:
        for lines in self._sets:
            yield from lines.values()

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _drop(self, line: Line) -> None:
        self._len -= 1
        if self.directory is not None:
            self.directory.remove(line.addr, self.cache_id)


#: The default backend: what plain ``CacheArray(...)`` constructs.
CacheArray = SlotCacheArray

#: Config-string -> backend class (``SystemConfig.cache_backend``).
CACHE_BACKENDS = {"slot": SlotCacheArray, "dict": DictCacheArray}


def default_backend() -> str:
    """The backend name used when config leaves the choice open.

    ``REPRO_CACHE_BACKEND`` overrides the built-in default, so CI can run
    the whole suite (golden digests included) against either backend
    without touching config call sites.
    """
    name = os.environ.get("REPRO_CACHE_BACKEND", "slot")
    if name not in CACHE_BACKENDS:
        raise ValueError(
            f"REPRO_CACHE_BACKEND={name!r} unknown; choose from {sorted(CACHE_BACKENDS)}"
        )
    return name


def resolve_backend(name: str):
    """Map a ``cache_backend`` config value to its array class."""
    try:
        return CACHE_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {name!r}; choose from {sorted(CACHE_BACKENDS)}"
        ) from None
